// Regression tests for the incremental mapping-evaluation engine: the
// cached EvalContext::evaluate() path must return Evaluations identical to
// the from-scratch Mapper::evaluate() reference across every routing
// function and topology family, and the parallel neighborhood search must be
// deterministic and equal to the sequential search.

#include <gtest/gtest.h>

#include <numeric>

#include "apps/apps.h"
#include "mapping/eval_context.h"
#include "mapping/mapper.h"
#include "topo/library.h"

namespace sunmap::mapping {
namespace {

std::vector<std::unique_ptr<topo::Topology>> test_topologies(int cores) {
  std::vector<std::unique_ptr<topo::Topology>> topologies;
  topologies.push_back(topo::make_mesh_for(cores));
  topologies.push_back(topo::make_torus_for(cores));
  topologies.push_back(topo::make_butterfly_for(cores));
  return topologies;
}

/// A valid but non-trivial fixed mapping: core i on slot (i * 5 + 3) mod
/// num_slots, made injective by construction when gcd(5, num_slots) == 1;
/// falls back to a rotation otherwise.
std::vector<int> scrambled_mapping(int num_cores, int num_slots) {
  std::vector<int> mapping;
  std::vector<bool> used(static_cast<std::size_t>(num_slots), false);
  for (int core = 0; core < num_cores; ++core) {
    int slot = (core * 5 + 3) % num_slots;
    while (used[static_cast<std::size_t>(slot)]) slot = (slot + 1) % num_slots;
    used[static_cast<std::size_t>(slot)] = true;
    mapping.push_back(slot);
  }
  return mapping;
}

void expect_identical(const Evaluation& reference, const Evaluation& cached) {
  EXPECT_EQ(reference.bandwidth_feasible, cached.bandwidth_feasible);
  EXPECT_EQ(reference.area_feasible, cached.area_feasible);
  // The cached path mirrors the reference's arithmetic operation for
  // operation, so every metric must match exactly, not just approximately.
  EXPECT_EQ(reference.max_link_load_mbps, cached.max_link_load_mbps);
  EXPECT_EQ(reference.avg_switch_hops, cached.avg_switch_hops);
  EXPECT_EQ(reference.avg_path_latency_ns, cached.avg_path_latency_ns);
  EXPECT_EQ(reference.design_area_mm2, cached.design_area_mm2);
  EXPECT_EQ(reference.design_power_mw, cached.design_power_mw);
  EXPECT_EQ(reference.dynamic_power_mw, cached.dynamic_power_mw);
  EXPECT_EQ(reference.static_power_mw, cached.static_power_mw);
  EXPECT_EQ(reference.switch_area_mm2, cached.switch_area_mm2);
  EXPECT_EQ(reference.cost, cached.cost);

  EXPECT_EQ(reference.link_loads, cached.link_loads);
  ASSERT_EQ(reference.routes.size(), cached.routes.size());
  for (std::size_t k = 0; k < reference.routes.size(); ++k) {
    const auto& ref_routes = reference.routes[k];
    const auto& new_routes = cached.routes[k];
    ASSERT_EQ(ref_routes.paths.size(), new_routes.paths.size());
    for (std::size_t p = 0; p < ref_routes.paths.size(); ++p) {
      EXPECT_EQ(ref_routes.paths[p].path.nodes, new_routes.paths[p].path.nodes);
      EXPECT_EQ(ref_routes.paths[p].path.edges, new_routes.paths[p].path.edges);
      EXPECT_EQ(ref_routes.paths[p].fraction, new_routes.paths[p].fraction);
    }
  }
  EXPECT_EQ(reference.floorplan.area_mm2(), cached.floorplan.area_mm2());
}

TEST(EvalContext, MatchesFromScratchEvaluateEverywhere) {
  const auto app = apps::vopd();
  for (const auto& topology : test_topologies(app.num_cores())) {
    const auto mapping =
        scrambled_mapping(app.num_cores(), topology->num_slots());
    for (route::RoutingKind kind : route::kAllRoutingKinds) {
      MapperConfig config;
      config.routing = kind;
      Mapper mapper(config);
      const auto reference = mapper.evaluate(app, *topology, mapping);
      const auto ctx = mapper.make_context(app, *topology);
      EvalScratch scratch;
      const auto cached = ctx.evaluate(mapping, scratch);
      SCOPED_TRACE(std::string(topology->name()) + " / " + to_string(kind));
      expect_identical(reference, cached);
    }
  }
}

TEST(EvalContext, ScratchReuseDoesNotLeakStateBetweenMappings) {
  const auto app = apps::mwd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.routing = route::RoutingKind::kMinPath;
  Mapper mapper(config);
  const auto ctx = mapper.make_context(app, *mesh);
  EvalScratch scratch;

  std::vector<int> identity(static_cast<std::size_t>(app.num_cores()));
  std::iota(identity.begin(), identity.end(), 0);
  const auto scrambled =
      scrambled_mapping(app.num_cores(), mesh->num_slots());

  // Evaluate A, then B, then A again through one scratch: the third result
  // must match the first bit for bit.
  const auto first = ctx.evaluate(identity, scratch);
  (void)ctx.evaluate(scrambled, scratch);
  const auto again = ctx.evaluate(identity, scratch);
  expect_identical(first, again);
}

TEST(EvalContext, RejectsMalformedMappings) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  const Mapper mapper;
  const auto ctx = mapper.make_context(app, *mesh);
  EvalScratch scratch;

  std::vector<int> short_mapping(static_cast<std::size_t>(app.num_cores() - 1),
                                 0);
  EXPECT_THROW((void)ctx.evaluate(short_mapping, scratch),
               std::invalid_argument);

  std::vector<int> out_of_range(static_cast<std::size_t>(app.num_cores()), 0);
  std::iota(out_of_range.begin(), out_of_range.end(), 0);
  out_of_range.back() = mesh->num_slots();
  EXPECT_THROW((void)ctx.evaluate(out_of_range, scratch),
               std::invalid_argument);

  std::vector<int> not_injective(static_cast<std::size_t>(app.num_cores()), 0);
  EXPECT_THROW((void)ctx.evaluate(not_injective, scratch),
               std::invalid_argument);
}

TEST(EvalContext, HopBoundNeverExceedsEvaluatedCost) {
  const auto app = apps::mpeg4();
  for (const auto& topology : test_topologies(app.num_cores())) {
    const auto mapping =
        scrambled_mapping(app.num_cores(), topology->num_slots());
    for (route::RoutingKind kind : route::kAllRoutingKinds) {
      MapperConfig config;
      config.routing = kind;
      config.objective = Objective::kMinDelay;
      Mapper mapper(config);
      const auto ctx = mapper.make_context(app, *topology);
      EvalScratch scratch;
      const auto eval = ctx.evaluate(mapping, scratch);
      SCOPED_TRACE(std::string(topology->name()) + " / " + to_string(kind));
      EXPECT_LE(ctx.hop_cost_lower_bound(mapping), eval.cost + 1e-12);
    }
  }
}

TEST(EvalContext, PruningDoesNotChangeSearchResult) {
  // collect_explored disables bound pruning, so the same search with and
  // without it must walk the same trajectory and land on the same mapping,
  // at the same cost, after considering the same number of candidates.
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig pruned;
  pruned.routing = route::RoutingKind::kMinPath;
  pruned.objective = Objective::kMinDelay;
  MapperConfig unpruned = pruned;
  unpruned.collect_explored = true;

  const auto fast = Mapper(pruned).map(app, *mesh);
  const auto reference = Mapper(unpruned).map(app, *mesh);
  EXPECT_EQ(fast.core_to_slot, reference.core_to_slot);
  EXPECT_EQ(fast.eval.cost, reference.eval.cost);
  EXPECT_EQ(fast.evaluated_mappings, reference.evaluated_mappings);
  EXPECT_GT(fast.pruned_mappings, 0);
  EXPECT_EQ(reference.pruned_mappings, 0);
}

TEST(ParallelSearch, DeterministicAndEqualToSequential) {
  const auto app = apps::vopd();
  for (const auto& topology : test_topologies(app.num_cores())) {
    for (route::RoutingKind kind : route::kAllRoutingKinds) {
      MapperConfig config;
      config.routing = kind;
      // A generous capacity keeps the incumbent feasible so the pruning and
      // acceptance logic is exercised, not just the evaluation path.
      config.link_bandwidth_mbps = 2000.0;
      config.swap_passes = 2;

      Mapper sequential(config);
      const auto base = sequential.map(app, *topology);

      for (int threads : {2, 5}) {
        auto parallel_config = config;
        parallel_config.num_threads = threads;
        Mapper parallel(parallel_config);
        const auto result = parallel.map(app, *topology);
        SCOPED_TRACE(std::string(topology->name()) + " / " +
                     to_string(kind) + " / threads=" +
                     std::to_string(threads));
        EXPECT_EQ(base.core_to_slot, result.core_to_slot);
        EXPECT_EQ(base.eval.cost, result.eval.cost);
        EXPECT_EQ(base.evaluated_mappings, result.evaluated_mappings);
        EXPECT_EQ(base.pruned_mappings, result.pruned_mappings);
      }
    }
  }
}

TEST(ParallelSearch, RepeatedRunsAreIdentical) {
  const auto app = apps::mwd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.routing = route::RoutingKind::kMinPath;
  config.num_threads = 4;
  Mapper mapper(config);
  const auto first = mapper.map(app, *mesh);
  const auto second = mapper.map(app, *mesh);
  EXPECT_EQ(first.core_to_slot, second.core_to_slot);
  EXPECT_EQ(first.eval.cost, second.eval.cost);
}

TEST(Rebind, MatchesFreshContextAcrossAllRoutingKinds) {
  // One context re-bound through every routing kind (and back) must map
  // bit-identically to a context freshly built for each configuration —
  // the contract the batched design-space explorer rests on.
  const auto app = apps::vopd();
  for (const auto& topology : test_topologies(app.num_cores())) {
    MapperConfig initial;
    initial.routing = route::RoutingKind::kMinPath;
    Mapper first(initial);
    auto ctx = first.make_context(app, *topology);

    std::vector<MapperConfig> chain;
    for (route::RoutingKind kind : route::kAllRoutingKinds) {
      MapperConfig config;
      config.routing = kind;
      chain.push_back(config);
    }
    // Revisit the first two kinds so the kept static-route tables and the
    // quadrant table are reused after other kinds were bound in between.
    chain.push_back(chain[0]);
    chain.push_back(chain[1]);

    EvalScratch scratch;  // reused across rebinds: sessions rebuild on demand
    for (const auto& config : chain) {
      Mapper mapper(config);
      ctx.rebind(config, mapper.library());
      const auto rebound = mapper.map(ctx, scratch);
      const auto fresh = mapper.map(app, *topology);
      SCOPED_TRACE(std::string(topology->name()) + " / " +
                   route::to_string(config.routing));
      EXPECT_EQ(rebound.core_to_slot, fresh.core_to_slot);
      EXPECT_EQ(rebound.evaluated_mappings, fresh.evaluated_mappings);
      EXPECT_EQ(rebound.pruned_mappings, fresh.pruned_mappings);
      expect_identical(fresh.eval, rebound.eval);
    }
  }
}

TEST(Rebind, ObjectiveBandwidthAndConstraintChangesMatchFreshContexts) {
  const auto app = apps::mpeg4();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig base;
  base.routing = route::RoutingKind::kSplitAll;
  Mapper first(base);
  auto ctx = first.make_context(app, *mesh);

  std::vector<MapperConfig> chain;
  for (Objective objective : {Objective::kMinArea, Objective::kWeighted,
                              Objective::kMinDelay}) {
    MapperConfig config = base;
    config.objective = objective;
    chain.push_back(config);
  }
  {
    MapperConfig config = base;
    config.link_bandwidth_mbps = 1000.0;  // affects split-all routing
    chain.push_back(config);
    config.max_area_mm2 = 60.0;
    chain.push_back(config);
  }

  EvalScratch scratch;
  for (const auto& config : chain) {
    Mapper mapper(config);
    ctx.rebind(config, mapper.library());
    const auto rebound = mapper.map(ctx, scratch);
    const auto fresh = mapper.map(app, *mesh);
    SCOPED_TRACE(std::string(to_string(config.objective)) + " / bw=" +
                 std::to_string(config.link_bandwidth_mbps));
    EXPECT_EQ(rebound.core_to_slot, fresh.core_to_slot);
    expect_identical(fresh.eval, rebound.eval);
  }
}

TEST(Rebind, TechnologyChangeReresolvesSwitchTables) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  Mapper first;
  auto ctx = first.make_context(app, *mesh);

  MapperConfig scaled;
  scaled.tech.energy_fixed_pj *= 2.0;
  scaled.tech.static_fixed_mw *= 1.5;
  scaled.tech.area_fixed *= 1.2;
  Mapper mapper(scaled);
  ctx.rebind(scaled, mapper.library());
  EvalScratch scratch;
  const auto rebound = mapper.map(ctx, scratch);
  const auto fresh = mapper.map(app, *mesh);
  EXPECT_EQ(rebound.core_to_slot, fresh.core_to_slot);
  expect_identical(fresh.eval, rebound.eval);

  // And back: the original technology point must be restored exactly.
  MapperConfig original;
  Mapper back(original);
  ctx.rebind(original, back.library());
  const auto restored = back.map(ctx, scratch);
  const auto reference = back.map(app, *mesh);
  EXPECT_EQ(restored.core_to_slot, reference.core_to_slot);
  expect_identical(reference.eval, restored.eval);
}

TEST(MapResult, SearchOutcomeMatchesFromScratchReEvaluation) {
  // Whatever mapping the cached search returns, evaluating it from scratch
  // must reproduce the reported Evaluation — the search can never report a
  // cost its mapping does not actually achieve.
  const auto app = apps::dsp_filter();
  for (const auto& topology : test_topologies(app.num_cores())) {
    for (route::RoutingKind kind : route::kAllRoutingKinds) {
      MapperConfig config;
      config.routing = kind;
      Mapper mapper(config);
      const auto result = mapper.map(app, *topology);
      const auto reference =
          mapper.evaluate(app, *topology, result.core_to_slot);
      SCOPED_TRACE(std::string(topology->name()) + " / " + to_string(kind));
      expect_identical(reference, result.eval);
    }
  }
}

}  // namespace
}  // namespace sunmap::mapping
