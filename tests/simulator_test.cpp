#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"
#include "topo/library.h"

namespace sunmap::sim {
namespace {

SimConfig quick_config() {
  SimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  config.drain_cycles = 20000;
  config.seed = 1;
  return config;
}

TEST(Simulator, ZeroLoadLatencyMatchesPipelineModel) {
  // One low-rate flow between adjacent mesh nodes under XY routing: every
  // packet takes exactly F + (S-1)*L cycles (4 flits, 2 switches, 1-cycle
  // links -> 5 cycles).
  const auto mesh = topo::make_mesh_for(9);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  SimConfig config = quick_config();
  config.flits_per_packet = 4;
  TraceTraffic traffic({{0, 1, 50.0}}, 4, 0.1);  // 0.005 flits/cycle
  Simulator simulator(*mesh, routes, config);
  const auto stats = simulator.run(traffic);
  ASSERT_GT(stats.packets_delivered, 0u);
  EXPECT_FALSE(stats.saturated);
  EXPECT_EQ(stats.status, RunStatus::kDrained);
  EXPECT_EQ(stats.undelivered_packets, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_latency_cycles, 5.0);
  EXPECT_DOUBLE_EQ(stats.max_latency_cycles, 5.0);
}

TEST(Simulator, ZeroLoadLatencyAcrossTheMesh) {
  // Corner to corner on a 3x3 mesh: 5 switches -> 4 + 4 = 8 cycles.
  const auto mesh = topo::make_mesh_for(9);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  SimConfig config = quick_config();
  TraceTraffic traffic({{0, 8, 50.0}}, 4, 0.1);
  Simulator simulator(*mesh, routes, config);
  const auto stats = simulator.run(traffic);
  ASSERT_GT(stats.packets_delivered, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_latency_cycles, 8.0);
}

TEST(Simulator, LinkLatencyAddsPerHopCycles) {
  const auto mesh = topo::make_mesh_for(9);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  SimConfig config = quick_config();
  config.link_latency_cycles = 3;
  TraceTraffic traffic({{0, 1, 50.0}}, 4, 0.1);
  Simulator simulator(*mesh, routes, config);
  const auto stats = simulator.run(traffic);
  ASSERT_GT(stats.packets_delivered, 0u);
  // F + (S-1)*L = 4 + 1*3 = 7.
  EXPECT_DOUBLE_EQ(stats.avg_latency_cycles, 7.0);
}

class DeadlockFreeTopologies : public ::testing::TestWithParam<int> {};

TEST_P(DeadlockFreeTopologies, DeliversEveryPacketAtLowLoad) {
  // DO routing is deadlock-free on these topologies (XY / e-cube /
  // feed-forward stages / hub), so at low load every measured packet must
  // arrive.
  auto library = topo::standard_library(16);
  const auto topology =
      std::move(library[static_cast<std::size_t>(GetParam())]);
  const auto routes = RouteTable::all_pairs(
      *topology, route::RoutingKind::kDimensionOrdered);
  const auto stats = simulate_pattern(*topology, routes, Pattern::kUniform,
                                      0.05, quick_config());
  EXPECT_FALSE(stats.saturated) << topology->name();
  EXPECT_GT(stats.packets_generated, 0u);
  EXPECT_EQ(stats.packets_delivered, stats.packets_generated)
      << topology->name();
  EXPECT_GT(stats.avg_latency_cycles, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Library, DeadlockFreeTopologies,
                         ::testing::Values(0, 2, 3, 4));  // mesh, hyp, clos, fly

TEST(Simulator, LatencyIncreasesWithInjectionRate) {
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  const auto low = simulate_pattern(*mesh, routes, Pattern::kUniform, 0.05,
                                    quick_config());
  const auto high = simulate_pattern(*mesh, routes, Pattern::kUniform, 0.3,
                                     quick_config());
  EXPECT_FALSE(low.saturated);
  EXPECT_GT(high.avg_latency_cycles, low.avg_latency_cycles);
}

TEST(Simulator, DeterministicForSameSeed) {
  const auto mesh = topo::make_mesh_for(9);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  const auto a = simulate_pattern(*mesh, routes, Pattern::kUniform, 0.1,
                                  quick_config());
  const auto b = simulate_pattern(*mesh, routes, Pattern::kUniform, 0.1,
                                  quick_config());
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stalled_cycles, b.stalled_cycles);
  EXPECT_EQ(a.undelivered_packets, b.undelivered_packets);
}

TEST(Simulator, SeedsChangeTheRun) {
  const auto mesh = topo::make_mesh_for(9);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  SimConfig other = quick_config();
  other.seed = 99;
  const auto a = simulate_pattern(*mesh, routes, Pattern::kUniform, 0.1,
                                  quick_config());
  const auto b =
      simulate_pattern(*mesh, routes, Pattern::kUniform, 0.1, other);
  EXPECT_NE(a.packets_generated, b.packets_generated);
}

TEST(Simulator, SaturatesBeyondCapacity) {
  // Bit-complement at 0.8 flits/cycle/node drives the 4x4 mesh's bisection
  // channels to 1.6x their capacity: the run must flag saturation.
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  SimConfig config = quick_config();
  config.drain_cycles = 3000;
  const auto stats =
      simulate_pattern(*mesh, routes, Pattern::kBitComplement, 0.8, config);
  EXPECT_TRUE(stats.saturated);
  // The boolean is exactly the structured verdict's "anything but drained".
  // Source-queue backpressure throttles generation here, so the run drains
  // what it generated and the acceptance check — not the drain budget — is
  // what flags the overload.
  EXPECT_EQ(stats.status, RunStatus::kSaturatedThroughput);
  EXPECT_EQ(stats.saturated, stats.status != RunStatus::kDrained);
  EXPECT_EQ(stats.undelivered_packets,
            stats.packets_generated - stats.packets_delivered);
  EXPECT_LT(stats.throughput_flits_per_cycle_per_slot,
            0.9 * stats.offered_flits_per_cycle_per_slot);
}

TEST(Simulator, ClosOutlastsButterflyUnderAdversarialTraffic) {
  // The §6.2 claim behind Fig 8(b): at a load where the butterfly's single
  // paths have long since saturated, the clos still delivers with low
  // latency thanks to its middle-stage path diversity.
  auto library = topo::standard_library(16);
  const auto& clos = *library[3];
  const auto& fly = *library[4];
  const auto clos_routes =
      RouteTable::all_pairs(clos, route::RoutingKind::kSplitMin);
  const auto fly_routes =
      RouteTable::all_pairs(fly, route::RoutingKind::kSplitMin);
  const auto clos_stats = simulate_pattern(clos, clos_routes,
                                           Pattern::kBitComplement, 0.35,
                                           quick_config());
  const auto fly_stats = simulate_pattern(fly, fly_routes,
                                          Pattern::kBitComplement, 0.35,
                                          quick_config());
  EXPECT_FALSE(clos_stats.saturated);
  const bool fly_worse =
      fly_stats.saturated ||
      fly_stats.avg_latency_cycles > 2.0 * clos_stats.avg_latency_cycles;
  EXPECT_TRUE(fly_worse);
}

TEST(Simulator, WormholeDeadlockIsDetectedNotHung) {
  // Split-over-minimum-paths on a mesh mixes XY and YX turns, which is not
  // deadlock-free under single-VC wormhole switching — a known property the
  // simulator must surface as saturation rather than hang on.
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kSplitMin);
  SimConfig config = quick_config();
  config.drain_cycles = 8000;
  config.stall_limit_cycles = 500;
  const auto stats =
      simulate_pattern(*mesh, routes, Pattern::kBitComplement, 0.4, config);
  EXPECT_TRUE(stats.saturated);
  // A deadlock ends the run through the stall detector specifically, after
  // at least one full stall streak of motionless cycles.
  EXPECT_EQ(stats.status, RunStatus::kStalled);
  EXPECT_GE(stats.stalled_cycles, config.stall_limit_cycles);
  EXPECT_STREQ(to_string(stats.status), "stalled");
  // The stall path is as deterministic as the rest of the run.
  const auto again =
      simulate_pattern(*mesh, routes, Pattern::kBitComplement, 0.4, config);
  EXPECT_EQ(again.status, RunStatus::kStalled);
  EXPECT_EQ(again.cycles, stats.cycles);
  EXPECT_EQ(again.stalled_cycles, stats.stalled_cycles);
  EXPECT_EQ(again.undelivered_packets, stats.undelivered_packets);
}

TEST(Simulator, ThroughputTracksOfferedLoadBelowSaturation) {
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  const auto stats = simulate_pattern(*mesh, routes, Pattern::kUniform, 0.1,
                                      quick_config());
  EXPECT_FALSE(stats.saturated);
  EXPECT_EQ(stats.status, RunStatus::kDrained);
  EXPECT_EQ(stats.stalled_cycles, 0u);
  EXPECT_NEAR(stats.throughput_flits_per_cycle_per_slot, 0.1, 0.02);
}

TEST(Simulator, DistanceClassVcsRemoveSplitRoutingDeadlock) {
  // The same configuration that deadlocks under a single VC (see
  // WormholeDeadlockIsDetectedNotHung) runs cleanly with distance-class
  // virtual channels: VC indices strictly increase along every path, so the
  // channel dependency graph is acyclic.
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kSplitMin);
  SimConfig config = quick_config();
  config.distance_class_vcs = true;
  const auto stats =
      simulate_pattern(*mesh, routes, Pattern::kBitComplement, 0.2, config);
  EXPECT_FALSE(stats.saturated);
  EXPECT_EQ(stats.packets_delivered, stats.packets_generated);
}

TEST(Simulator, DistanceClassVcsKeepZeroLoadLatency) {
  const auto mesh = topo::make_mesh_for(9);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  SimConfig config = quick_config();
  config.distance_class_vcs = true;
  TraceTraffic traffic({{0, 8, 50.0}}, 4, 0.1);
  Simulator simulator(*mesh, routes, config);
  const auto stats = simulator.run(traffic);
  ASSERT_GT(stats.packets_delivered, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_latency_cycles, 8.0);
}

TEST(Simulator, DistanceClassVcsHelpTorusWraps) {
  // DO routing on torus wraparounds can deadlock with one VC; with
  // distance-class VCs every measured packet at moderate load arrives.
  const auto torus = topo::make_torus_for(16);
  const auto routes =
      RouteTable::all_pairs(*torus, route::RoutingKind::kDimensionOrdered);
  SimConfig config = quick_config();
  config.distance_class_vcs = true;
  const auto stats =
      simulate_pattern(*torus, routes, Pattern::kTornado, 0.15, config);
  EXPECT_FALSE(stats.saturated);
  EXPECT_EQ(stats.packets_delivered, stats.packets_generated);
}

TEST(RouteTableVc, MaxPathSwitches) {
  const auto mesh = topo::make_mesh_for(9);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  EXPECT_EQ(routes.max_path_switches(), 5);  // corner to corner on 3x3
}

TEST(Simulator, PercentilesOrderedAndBracketed) {
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  const auto stats = simulate_pattern(*mesh, routes, Pattern::kUniform, 0.2,
                                      quick_config());
  ASSERT_GT(stats.packets_delivered, 0u);
  EXPECT_LE(stats.p50_latency_cycles, stats.p95_latency_cycles);
  EXPECT_LE(stats.p95_latency_cycles, stats.p99_latency_cycles);
  EXPECT_LE(stats.p99_latency_cycles, stats.max_latency_cycles);
  EXPECT_GE(stats.p50_latency_cycles, 1.0);
  // The mean sits between the median and the max under queueing skew.
  EXPECT_GE(stats.avg_latency_cycles, stats.p50_latency_cycles * 0.8);
}

TEST(Simulator, ZeroLoadPercentilesDegenerate) {
  const auto mesh = topo::make_mesh_for(9);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  TraceTraffic traffic({{0, 1, 50.0}}, 4, 0.1);
  Simulator simulator(*mesh, routes, quick_config());
  const auto stats = simulator.run(traffic);
  EXPECT_DOUBLE_EQ(stats.p50_latency_cycles, 5.0);
  EXPECT_DOUBLE_EQ(stats.p99_latency_cycles, 5.0);
}

TEST(Simulator, RejectsBadConfig) {
  const auto mesh = topo::make_mesh_for(9);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  SimConfig config;
  config.flits_per_packet = 0;
  EXPECT_THROW(Simulator(*mesh, routes, config), std::invalid_argument);
  config = SimConfig{};
  config.buffer_depth_flits = 0;
  EXPECT_THROW(Simulator(*mesh, routes, config), std::invalid_argument);
}

}  // namespace
}  // namespace sunmap::sim
