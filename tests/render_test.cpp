#include <gtest/gtest.h>

#include "apps/apps.h"
#include "fplan/render.h"
#include "mapping/mapper.h"
#include "topo/library.h"

namespace sunmap::fplan {
namespace {

Floorplan simple_plan() {
  std::vector<PlacedBlock> blocks;
  blocks.push_back(PlacedBlock{PlacedBlock::Kind::kCore, 0, 0, 0, 4, 4});
  blocks.push_back(PlacedBlock{PlacedBlock::Kind::kSwitch, 3, 5, 0, 2, 2});
  return Floorplan(std::move(blocks), 8.0, 4.0);
}

TEST(Render, EmptyFloorplan) {
  EXPECT_EQ(render_ascii(Floorplan{}), "(empty floorplan)\n");
}

TEST(Render, ContainsDefaultLabels) {
  const auto art = render_ascii(simple_plan(), 60);
  EXPECT_NE(art.find("c0"), std::string::npos);
  EXPECT_NE(art.find("S3"), std::string::npos);
  EXPECT_NE(art.find('+'), std::string::npos);
  EXPECT_NE(art.find('|'), std::string::npos);
}

TEST(Render, CustomLabels) {
  const auto art = render_ascii(
      simple_plan(),
      [](const PlacedBlock& block) {
        return block.kind == PlacedBlock::Kind::kCore ? "CPU" : "XBAR";
      },
      60);
  EXPECT_NE(art.find("CPU"), std::string::npos);
  EXPECT_NE(art.find("XBAR"), std::string::npos);
}

TEST(Render, WidthScalesOutput) {
  const auto narrow = render_ascii(simple_plan(), 30);
  const auto wide = render_ascii(simple_plan(), 90);
  EXPECT_LT(narrow.size(), wide.size());
}

TEST(Render, TooNarrowFallsBack) {
  EXPECT_EQ(render_ascii(simple_plan(), 4), "(empty floorplan)\n");
}

TEST(Render, RealMappedFloorplanRenders) {
  const auto app = apps::dsp_filter();
  const auto fly = topo::make_butterfly_for(app.num_cores());
  mapping::MapperConfig config;
  config.link_bandwidth_mbps = 1000.0;
  mapping::Mapper mapper(config);
  const auto result = mapper.map(app, *fly);
  const auto art = render_ascii(result.eval.floorplan);
  // One box per placed block at least (labels may clip on tiny switches).
  EXPECT_GT(art.size(), 100u);
  EXPECT_NE(art.find('+'), std::string::npos);
}

}  // namespace
}  // namespace sunmap::fplan
