#include <gtest/gtest.h>

#include <algorithm>

#include "apps/apps.h"
#include "graph/paths.h"

namespace sunmap::apps {
namespace {

TEST(Vopd, MatchesPaperFigure3a) {
  const auto app = vopd();
  EXPECT_EQ(app.num_cores(), 12);
  EXPECT_EQ(app.num_flows(), 14);
  EXPECT_NEAR(app.total_bandwidth_mbps(), 3478.0, 1e-9);
  // The dominant pipeline edges.
  const auto& g = app.graph();
  EXPECT_TRUE(g.has_edge(app.core_index("vld"), app.core_index("run_le_dec")));
  EXPECT_TRUE(
      g.has_edge(app.core_index("vop_mem"), app.core_index("up_samp")));
}

TEST(Vopd, NoFlowExceedsPaperLinkCapacity) {
  // Every single VOPD flow fits a 500 MB/s link, which is why minimum-path
  // routing suffices in §6.1.
  const auto app = vopd();
  for (const auto& e : app.graph().edges()) {
    EXPECT_LE(e.weight, 500.0);
  }
}

TEST(Mpeg4, MatchesPaperFigure7a) {
  const auto app = mpeg4();
  EXPECT_EQ(app.num_cores(), 12);
  EXPECT_EQ(app.num_flows(), 12);
  // The SDRAM hotspot carries flows beyond a single 500 MB/s link: this is
  // what makes every single-path routing infeasible (§6.1, Fig 9(a)).
  int oversized = 0;
  for (const auto& e : app.graph().edges()) {
    if (e.weight > 500.0) ++oversized;
  }
  EXPECT_GE(oversized, 3);  // 910, 670, 600, 600
}

TEST(Mpeg4, SdramIsTheTrafficHotspot) {
  const auto app = mpeg4();
  const int sdram = app.core_index("sdram");
  double max_other = 0.0;
  for (int c = 0; c < app.num_cores(); ++c) {
    if (c == sdram) continue;
    max_other = std::max(max_other, app.core_traffic_mbps(c));
  }
  EXPECT_GT(app.core_traffic_mbps(sdram), max_other);
}

TEST(DspFilter, MatchesPaperFigure10a) {
  const auto app = dsp_filter();
  EXPECT_EQ(app.num_cores(), 6);
  EXPECT_EQ(app.num_flows(), 8);
  // Six 200 MB/s control flows and two 600 MB/s data flows.
  EXPECT_NEAR(app.total_bandwidth_mbps(), 6 * 200.0 + 2 * 600.0, 1e-9);
  EXPECT_TRUE(
      app.graph().has_edge(app.core_index("fft"), app.core_index("filter")));
  EXPECT_TRUE(
      app.graph().has_edge(app.core_index("filter"), app.core_index("ifft")));
}

TEST(Netproc16, UniformSixteenNodes) {
  const auto app = netproc16();
  EXPECT_EQ(app.num_cores(), 16);
  EXPECT_EQ(app.num_flows(), 48);
  // Symmetric by construction: all cores see identical traffic.
  const double t0 = app.core_traffic_mbps(0);
  for (int c = 1; c < 16; ++c) {
    EXPECT_NEAR(app.core_traffic_mbps(c), t0, 1e-9);
  }
}

TEST(Pip, EightCorePipelines) {
  const auto app = pip();
  EXPECT_EQ(app.num_cores(), 8);
  EXPECT_EQ(app.num_flows(), 8);
  // Both scaler pipelines drain into the shared memory.
  const auto& g = app.graph();
  EXPECT_TRUE(g.has_edge(app.core_index("jug1"), app.core_index("mem")));
  EXPECT_TRUE(g.has_edge(app.core_index("jug2"), app.core_index("mem")));
  // Fits an octagon: at most 8 cores and modest bandwidths.
  for (const auto& e : g.edges()) EXPECT_LE(e.weight, 128.0);
}

TEST(Mwd, TwelveCoreDisplayPipeline) {
  const auto app = mwd();
  EXPECT_EQ(app.num_cores(), 12);
  EXPECT_EQ(app.num_flows(), 13);
  EXPECT_TRUE(app.graph().has_edge(app.core_index("se"),
                                   app.core_index("blend")));
  // Three hard memory blocks.
  int hard = 0;
  for (int c = 0; c < app.num_cores(); ++c) {
    if (!app.core(c).shape.soft) ++hard;
  }
  EXPECT_EQ(hard, 3);
}

TEST(Synthetic, DeterministicForSameSeed) {
  SyntheticSpec spec;
  spec.num_cores = 10;
  spec.seed = 7;
  const auto a = synthetic(spec);
  const auto b = synthetic(spec);
  ASSERT_EQ(a.num_flows(), b.num_flows());
  for (int e = 0; e < a.num_flows(); ++e) {
    EXPECT_EQ(a.graph().edge(e).src, b.graph().edge(e).src);
    EXPECT_EQ(a.graph().edge(e).dst, b.graph().edge(e).dst);
    EXPECT_DOUBLE_EQ(a.graph().edge(e).weight, b.graph().edge(e).weight);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.num_cores = 10;
  spec.seed = 1;
  const auto a = synthetic(spec);
  spec.seed = 2;
  const auto b = synthetic(spec);
  bool differs = a.num_flows() != b.num_flows();
  if (!differs) {
    for (int e = 0; e < a.num_flows(); ++e) {
      if (a.graph().edge(e).src != b.graph().edge(e).src ||
          a.graph().edge(e).weight != b.graph().edge(e).weight) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Synthetic, IsWeaklyConnected) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SyntheticSpec spec;
    spec.num_cores = 12;
    spec.edge_density = 0.0;  // only the spanning chain
    spec.seed = seed;
    const auto app = synthetic(spec);
    EXPECT_EQ(app.num_flows(), 11);
    // Treat edges as undirected: every core must be reachable from core 0.
    graph::DirectedGraph undirected(app.num_cores());
    for (const auto& e : app.graph().edges()) {
      undirected.add_edge(e.src, e.dst);
      undirected.add_edge(e.dst, e.src);
    }
    const auto dist = graph::bfs_distances(undirected, 0);
    for (int c = 0; c < app.num_cores(); ++c) {
      EXPECT_GE(dist[static_cast<std::size_t>(c)], 0);
    }
  }
}

TEST(Synthetic, RespectsBandwidthRange) {
  SyntheticSpec spec;
  spec.num_cores = 8;
  spec.edge_density = 0.5;
  spec.min_bandwidth_mbps = 50.0;
  spec.max_bandwidth_mbps = 60.0;
  const auto app = synthetic(spec);
  for (const auto& e : app.graph().edges()) {
    EXPECT_GE(e.weight, 50.0);
    EXPECT_LE(e.weight, 60.0);
  }
}

TEST(Synthetic, ValidatesSpec) {
  SyntheticSpec spec;
  spec.num_cores = 1;
  EXPECT_THROW(synthetic(spec), std::invalid_argument);
  spec.num_cores = 8;
  spec.edge_density = 1.5;
  EXPECT_THROW(synthetic(spec), std::invalid_argument);
  spec.edge_density = 0.2;
  spec.max_bandwidth_mbps = 1.0;
  spec.min_bandwidth_mbps = 2.0;
  EXPECT_THROW(synthetic(spec), std::invalid_argument);
}

}  // namespace
}  // namespace sunmap::apps
