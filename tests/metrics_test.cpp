#include <gtest/gtest.h>

#include "topo/library.h"
#include "topo/metrics.h"

namespace sunmap::topo {
namespace {

TEST(Metrics, MeshValues) {
  const auto mesh = make_mesh_for(9);  // 3x3
  const auto m = compute_metrics(*mesh);
  EXPECT_EQ(m.num_switches, 9);
  EXPECT_EQ(m.num_slots, 9);
  EXPECT_EQ(m.num_network_links, 12);
  EXPECT_EQ(m.diameter_switch_hops, 5);  // corner to corner
  EXPECT_EQ(m.max_switch_radix, 5);      // centre switch
  EXPECT_EQ(m.min_path_diversity, 1);    // aligned pairs
  EXPECT_GT(m.max_path_diversity, 1);    // diagonal pairs
}

TEST(Metrics, ButterflyHasNoDiversity) {
  const auto fly = make_butterfly_for(16);  // 4-ary 2-fly
  const auto m = compute_metrics(*fly);
  EXPECT_EQ(m.min_path_diversity, 1);
  EXPECT_EQ(m.max_path_diversity, 1);
  EXPECT_DOUBLE_EQ(m.avg_path_diversity, 1.0);
  EXPECT_EQ(m.diameter_switch_hops, 2);
  EXPECT_DOUBLE_EQ(m.avg_switch_hops, 2.0);
}

TEST(Metrics, ClosDiversityEqualsMiddles) {
  const auto clos = std::make_unique<Clos>(4, 2, 4);
  const auto m = compute_metrics(*clos);
  EXPECT_EQ(m.min_path_diversity, 4);
  EXPECT_EQ(m.max_path_diversity, 4);
  EXPECT_EQ(m.diameter_switch_hops, 3);
}

TEST(Metrics, ClosHasMaximumWorstCaseDiversityOfLibrary) {
  // §6.2: "clos networks have maximum path diversity" — every slot pair has
  // m distinct minimum paths, whereas every other library topology has
  // pairs with a single minimum path (aligned mesh/torus pairs, all
  // butterfly pairs).
  const auto library = standard_library(16);
  std::int64_t clos_min = 0;
  std::int64_t best_other_min = 0;
  for (const auto& topology : library) {
    const auto m = compute_metrics(*topology);
    if (topology->kind() == TopologyKind::kClos) {
      clos_min = m.min_path_diversity;
    } else {
      best_other_min = std::max(best_other_min, m.min_path_diversity);
    }
  }
  EXPECT_GT(clos_min, best_other_min);
  EXPECT_EQ(best_other_min, 1);
}

TEST(Metrics, StarDiameter) {
  const auto star = Star(8);
  const auto m = compute_metrics(star);
  EXPECT_EQ(m.diameter_switch_hops, 3);
  EXPECT_DOUBLE_EQ(m.avg_switch_hops, 3.0);
  EXPECT_EQ(m.max_switch_radix, 8);  // the hub
}

TEST(Metrics, TorusBeatsMeshOnDistanceAndCapacity) {
  const auto mesh = make_mesh_for(16);
  const auto torus = make_torus_for(16);
  const auto mesh_metrics = compute_metrics(*mesh);
  const auto torus_metrics = compute_metrics(*torus);
  EXPECT_LT(torus_metrics.avg_switch_hops, mesh_metrics.avg_switch_hops);
  EXPECT_GT(torus_metrics.uniform_capacity_flits_per_slot,
            mesh_metrics.uniform_capacity_flits_per_slot);
}

TEST(Metrics, RadixTotalsMatchPortSums) {
  const auto fly = make_butterfly_for(16);
  const auto m = compute_metrics(*fly);
  EXPECT_EQ(m.total_switch_radix, 8 * 4);
  EXPECT_EQ(m.max_switch_radix, 4);
}

}  // namespace
}  // namespace sunmap::topo
