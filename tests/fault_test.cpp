// Fault-injection and degraded-mode evaluation tests: scenario
// materialization, masked routing on the surviving subgraph (randomized,
// cross-checked against an independent reachability search), the penalty
// semantics of disconnected scenarios, and bit-identity between the
// incremental EvalContext fault path and the from-scratch Mapper reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "apps/apps.h"
#include "fault/fault.h"
#include "io/exploration_io.h"
#include "mapping/eval_context.h"
#include "mapping/mapper.h"
#include "select/explorer.h"
#include "topo/custom.h"
#include "topo/library.h"
#include "util/prng.h"

namespace sunmap::fault {
namespace {

/// A 6-switch custom topology with one articulation link: cutting 2-3
/// disconnects the two triangles. Six core slots, one per switch.
std::unique_ptr<topo::Topology> barbell6() {
  topo::CustomTopology::Builder builder("barbell6");
  std::vector<graph::NodeId> s;
  for (int i = 0; i < 6; ++i) s.push_back(builder.add_switch());
  builder.add_bidirectional_link(s[0], s[1]);
  builder.add_bidirectional_link(s[1], s[2]);
  builder.add_bidirectional_link(s[2], s[0]);
  builder.add_bidirectional_link(s[3], s[4]);
  builder.add_bidirectional_link(s[4], s[5]);
  builder.add_bidirectional_link(s[5], s[3]);
  builder.add_bidirectional_link(s[2], s[3]);
  for (int i = 0; i < 6; ++i) builder.attach_core(s[i]);
  return builder.build();
}

std::vector<std::unique_ptr<topo::Topology>> fault_test_topologies() {
  std::vector<std::unique_ptr<topo::Topology>> topologies;
  topologies.push_back(topo::make_mesh_for(16));
  topologies.push_back(topo::make_torus_for(16));
  topologies.push_back(topo::make_butterfly_for(16));
  topologies.push_back(barbell6());
  return topologies;
}

/// Independent reachability check, deliberately not sharing code with
/// masked_bfs: iterate-to-fixpoint over the alive adjacency.
bool reachable_under_mask(const graph::DirectedGraph& g,
                          const ScenarioMask& mask, graph::NodeId src,
                          graph::NodeId dst) {
  if (mask.switch_alive[static_cast<std::size_t>(src)] == 0) return false;
  std::vector<char> seen(static_cast<std::size_t>(g.num_nodes()), 0);
  seen[static_cast<std::size_t>(src)] = 1;
  bool grew = true;
  while (grew) {
    grew = false;
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      if (mask.edge_alive[static_cast<std::size_t>(e)] == 0) continue;
      const auto& edge = g.edge(e);
      if (seen[static_cast<std::size_t>(edge.src)] == 0) continue;
      if (mask.switch_alive[static_cast<std::size_t>(edge.dst)] == 0) continue;
      if (seen[static_cast<std::size_t>(edge.dst)] == 0) {
        seen[static_cast<std::size_t>(edge.dst)] = 1;
        grew = true;
      }
    }
  }
  return seen[static_cast<std::size_t>(dst)] != 0;
}

TEST(FaultScenarios, EveryLinkCoversEachPhysicalChannelOnce) {
  const auto mesh = topo::make_mesh_for(16);
  const auto links = physical_links(*mesh);
  // A 4x4 mesh has 2*4*3 = 24 bidirectional channels.
  EXPECT_EQ(links.size(), 24u);
  for (const auto& link : links) EXPECT_LT(link.a, link.b);

  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kEveryLink;
  const auto scenarios = materialize(spec, *mesh);
  ASSERT_EQ(scenarios.size(), links.size());
  for (const auto& scenario : scenarios) {
    // Each bidirectional channel fails as its two directed edges.
    EXPECT_EQ(scenario.failed_edges.size(), 2u);
    EXPECT_TRUE(scenario.failed_switches.empty());
  }

  // On the unidirectional stage links of a butterfly every scenario removes
  // exactly one directed edge.
  const auto fly = topo::make_butterfly_for(16);
  const auto fly_scenarios = materialize(spec, *fly);
  EXPECT_EQ(fly_scenarios.size(), physical_links(*fly).size());
  for (const auto& scenario : fly_scenarios) {
    EXPECT_EQ(scenario.failed_edges.size(), 1u);
  }
}

TEST(FaultScenarios, RandomScenariosAreSeededAndDistinct) {
  const auto mesh = topo::make_mesh_for(16);
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kRandom;
  spec.num_scenarios = 5;
  spec.faults_per_scenario = 2;
  spec.seed = 42;
  const auto scenarios = materialize(spec, *mesh);
  ASSERT_EQ(scenarios.size(), 5u);
  for (const auto& scenario : scenarios) {
    // Two distinct channels -> four distinct directed edges.
    std::set<graph::EdgeId> edges(scenario.failed_edges.begin(),
                                  scenario.failed_edges.end());
    EXPECT_EQ(edges.size(), 4u);
  }
  // Same seed reproduces the same draw; a different seed changes it.
  const auto again = materialize(spec, *mesh);
  ASSERT_EQ(again.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(again[i].failed_edges, scenarios[i].failed_edges);
  }
  spec.seed = 43;
  const auto other = materialize(spec, *mesh);
  bool any_differs = false;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    any_differs = any_differs ||
                  other[i].failed_edges != scenarios[i].failed_edges;
  }
  EXPECT_TRUE(any_differs);
}

TEST(FaultScenarios, ExplicitSpecsValidatePerTopology) {
  const auto mesh = topo::make_mesh_for(16);
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kExplicit;
  // Switches 0 and 5 are not adjacent on the 4x4 mesh: the link fault
  // matches no edge and removes nothing (one spec can sweep a library).
  spec.scenarios.push_back({{{0, 5}}, {}, 1.0});
  const auto scenarios = materialize(spec, *mesh);
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_TRUE(scenarios[0].failed_edges.empty());

  // Out-of-range ids fail loudly at materialize (bind) time, naming the
  // topology and the value, instead of corrupting masks mid-search.
  FaultSpec bad_switch;
  bad_switch.kind = FaultSpec::Kind::kExplicit;
  bad_switch.scenarios.push_back({{}, {99}, 1.0});
  EXPECT_THROW(materialize(bad_switch, *mesh), std::invalid_argument);
  FaultSpec bad_link;
  bad_link.kind = FaultSpec::Kind::kExplicit;
  bad_link.scenarios.push_back({{{0, 99}}, {}, 1.0});
  EXPECT_THROW(materialize(bad_link, *mesh), std::invalid_argument);
}

TEST(FaultRouting, MaskedPathsUseOnlySurvivingHardware) {
  // Randomized property: on every topology family, under k random dead
  // channels (and sometimes a dead switch), every commodity either routes
  // edge-by-edge over surviving hardware or is reported unreachable in
  // agreement with an independent reachability search. Never a crash.
  util::Prng prng(2026);
  for (const auto& topology : fault_test_topologies()) {
    SCOPED_TRACE(topology->name());
    const auto& g = topology->switch_graph();
    const auto links = physical_links(*topology);
    for (int trial = 0; trial < 12; ++trial) {
      FaultScenario scenario;
      const int k = 1 + static_cast<int>(prng.next_below(3));
      FaultSpec spec;
      spec.kind = FaultSpec::Kind::kRandom;
      spec.num_scenarios = 1;
      spec.faults_per_scenario = k;
      spec.seed = 1000u + static_cast<std::uint64_t>(trial);
      scenario = materialize(spec, *topology)[0];
      if (trial % 3 == 0) {
        // Sometimes also kill a random switch outright.
        scenario.failed_switches.push_back(static_cast<graph::NodeId>(
            prng.next_below(static_cast<std::uint64_t>(g.num_nodes()))));
      }
      ScenarioMask mask;
      make_mask(g, scenario, mask);
      MaskedBfs bfs;
      graph::Path path;
      for (int src = 0; src < topology->num_slots(); ++src) {
        const graph::NodeId ingress = topology->ingress_switch(src);
        masked_bfs(g, ingress, mask, bfs);
        for (int dst = 0; dst < topology->num_slots(); ++dst) {
          const graph::NodeId egress = topology->egress_switch(dst);
          const bool routed = extract_path(g, bfs, ingress, egress, path);
          EXPECT_EQ(routed,
                    reachable_under_mask(g, mask, ingress, egress))
              << "slots " << src << "->" << dst;
          if (!routed) continue;
          ASSERT_EQ(path.nodes.size(), path.edges.size() + 1);
          EXPECT_EQ(path.nodes.front(), ingress);
          EXPECT_EQ(path.nodes.back(), egress);
          for (const graph::NodeId node : path.nodes) {
            EXPECT_NE(mask.switch_alive[static_cast<std::size_t>(node)], 0);
          }
          for (std::size_t i = 0; i < path.edges.size(); ++i) {
            const graph::EdgeId e = path.edges[i];
            EXPECT_NE(mask.edge_alive[static_cast<std::size_t>(e)], 0);
            EXPECT_EQ(g.edge(e).src, path.nodes[i]);
            EXPECT_EQ(g.edge(e).dst, path.nodes[i + 1]);
          }
        }
      }
    }
  }
}

mapping::CoreGraph two_triangles() {
  mapping::CoreGraph app("two-triangles");
  for (int i = 0; i < 6; ++i) app.add_core("c" + std::to_string(i), 1.0);
  app.add_flow(0, 1, 100.0);
  app.add_flow(1, 2, 80.0);
  app.add_flow(2, 3, 120.0);  // crosses the barbell articulation link
  app.add_flow(3, 4, 90.0);
  app.add_flow(4, 5, 60.0);
  return app;
}

TEST(FaultEval, DisconnectedScenarioIsPenalizedNotFatal) {
  const auto app = two_triangles();
  const auto topology = barbell6();
  std::vector<int> identity = {0, 1, 2, 3, 4, 5};

  mapping::MapperConfig plain;
  const mapping::Mapper base_mapper(plain);
  const auto base = base_mapper.evaluate(app, *topology, identity);
  EXPECT_TRUE(base.fault_outcomes.empty());
  EXPECT_EQ(base.worst_fault_cost, 0.0);
  EXPECT_EQ(base.infeasible_fault_scenarios, 0);

  mapping::MapperConfig config;
  config.faults.spec.kind = FaultSpec::Kind::kExplicit;
  // Scenario 0 cuts the articulation link 2-3: commodity 2->3 becomes
  // unroutable. Scenario 1 cuts a triangle edge: everything re-routes.
  config.faults.spec.scenarios.push_back({{{2, 3}}, {}, 1.0});
  config.faults.spec.scenarios.push_back({{{0, 1}}, {}, 1.0});
  const mapping::Mapper mapper(config);
  const auto eval = mapper.evaluate(app, *topology, identity);

  ASSERT_EQ(eval.fault_outcomes.size(), 2u);
  EXPECT_FALSE(eval.fault_outcomes[0].connected);
  EXPECT_TRUE(eval.fault_outcomes[1].connected);
  EXPECT_EQ(eval.infeasible_fault_scenarios, 1);
  // The disconnected scenario costs exactly penalty x fault-free cost, and
  // under worst-case aggregation that is the evaluation's cost.
  EXPECT_EQ(eval.fault_outcomes[0].cost,
            config.faults.infeasible_penalty * base.cost);
  EXPECT_EQ(eval.worst_fault_cost, eval.fault_outcomes[0].cost);
  EXPECT_EQ(eval.cost, eval.fault_outcomes[0].cost);
  EXPECT_GE(eval.cost, base.cost);

  // A dead attachment switch degrades to the same verdict through the full
  // search, not an exception: map() completes and reports the penalty.
  mapping::MapperConfig dead_switch;
  dead_switch.faults.spec.kind = FaultSpec::Kind::kExplicit;
  dead_switch.faults.spec.scenarios.push_back({{}, {0}, 1.0});
  const mapping::Mapper searcher(dead_switch);
  const auto result = searcher.map(app, *topology);
  EXPECT_EQ(result.eval.infeasible_fault_scenarios, 1);
  EXPECT_GT(result.eval.cost, 0.0);

  // The same verdict flows through the transactional search strategies.
  mapping::MapperConfig annealed = dead_switch;
  annealed.search = mapping::SearchKind::kAnnealing;
  annealed.annealing_iterations = 200;
  const mapping::Mapper annealer(annealed);
  const auto sa_result = annealer.map(app, *topology);
  EXPECT_EQ(sa_result.eval.infeasible_fault_scenarios, 1);
}

TEST(FaultEval, WeightedAggregationAveragesScenarioCosts) {
  const auto app = two_triangles();
  const auto topology = barbell6();
  std::vector<int> identity = {0, 1, 2, 3, 4, 5};

  mapping::MapperConfig config;
  config.faults.spec.kind = FaultSpec::Kind::kExplicit;
  config.faults.spec.scenarios.push_back({{{2, 3}}, {}, 3.0});
  config.faults.spec.scenarios.push_back({{{0, 1}}, {}, 1.0});
  config.faults.aggregation = Aggregation::kWeighted;
  config.faults.fault_free_weight = 2.0;
  const mapping::Mapper mapper(config);
  const auto eval = mapper.evaluate(app, *topology, identity);

  mapping::MapperConfig plain;
  const auto base =
      mapping::Mapper(plain).evaluate(app, *topology, identity);
  ASSERT_EQ(eval.fault_outcomes.size(), 2u);
  const double expected = (2.0 * base.cost +
                           3.0 * eval.fault_outcomes[0].cost +
                           1.0 * eval.fault_outcomes[1].cost) /
                          (2.0 + 3.0 + 1.0);
  EXPECT_DOUBLE_EQ(eval.cost, expected);
  // Each aggregated term is >= the fault-free cost's lower bound, so the
  // weighted mean stays >= it too (the pruning-admissibility invariant).
  EXPECT_GE(eval.fault_outcomes[0].cost, base.cost);
}

void expect_fault_identical(const mapping::Evaluation& a,
                            const mapping::Evaluation& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.worst_fault_cost, b.worst_fault_cost);
  EXPECT_EQ(a.infeasible_fault_scenarios, b.infeasible_fault_scenarios);
  ASSERT_EQ(a.fault_outcomes.size(), b.fault_outcomes.size());
  for (std::size_t s = 0; s < a.fault_outcomes.size(); ++s) {
    SCOPED_TRACE("scenario " + std::to_string(s));
    EXPECT_EQ(a.fault_outcomes[s].connected, b.fault_outcomes[s].connected);
    EXPECT_EQ(a.fault_outcomes[s].avg_switch_hops,
              b.fault_outcomes[s].avg_switch_hops);
    EXPECT_EQ(a.fault_outcomes[s].dynamic_power_mw,
              b.fault_outcomes[s].dynamic_power_mw);
    EXPECT_EQ(a.fault_outcomes[s].cost, b.fault_outcomes[s].cost);
    EXPECT_EQ(a.fault_outcomes[s].max_link_load_mbps,
              b.fault_outcomes[s].max_link_load_mbps);
  }
}

TEST(FaultEval, ContextMatchesFromScratchReferenceUnderFaults) {
  // The cached EvalContext fault path (prebuilt per-scenario BFS tables)
  // must reproduce the from-scratch Mapper::evaluate() reference bit for
  // bit, across topology families, objectives, and both aggregations.
  const auto app = apps::vopd();
  for (const auto& topology : fault_test_topologies()) {
    if (topology->num_slots() < app.num_cores()) continue;
    std::vector<int> mapping;
    for (int core = 0; core < app.num_cores(); ++core) {
      mapping.push_back((core * 5 + 3) % topology->num_slots());
    }
    std::sort(mapping.begin(), mapping.end());
    mapping.erase(std::unique(mapping.begin(), mapping.end()), mapping.end());
    while (static_cast<int>(mapping.size()) < app.num_cores()) {
      // Refill collisions with the smallest unused slots.
      for (int slot = 0; slot < topology->num_slots() &&
                         static_cast<int>(mapping.size()) < app.num_cores();
           ++slot) {
        if (std::find(mapping.begin(), mapping.end(), slot) ==
            mapping.end()) {
          mapping.push_back(slot);
        }
      }
    }
    for (const auto objective :
         {mapping::Objective::kMinDelay, mapping::Objective::kMinPower,
          mapping::Objective::kWeighted}) {
      for (const auto aggregation :
           {Aggregation::kWorstCase, Aggregation::kWeighted}) {
        mapping::MapperConfig config;
        config.objective = objective;
        config.faults.spec.kind = FaultSpec::Kind::kRandom;
        config.faults.spec.num_scenarios = 3;
        config.faults.spec.faults_per_scenario = 1;
        config.faults.spec.seed = 7;
        config.faults.aggregation = aggregation;
        const mapping::Mapper mapper(config);
        const auto reference = mapper.evaluate(app, *topology, mapping);
        const auto ctx = mapper.make_context(app, *topology);
        mapping::EvalScratch scratch;
        const auto cached = ctx.evaluate(mapping, scratch);
        SCOPED_TRACE(std::string(topology->name()) + " / " +
                     mapping::to_string(objective) + " / " +
                     to_string(aggregation));
        expect_fault_identical(reference, cached);
      }
    }
  }
}

TEST(FaultEval, IncrementalAndReferenceFaultPathsAreBitIdentical) {
  // incremental_fault_eval only changes where the BFS parent tables come
  // from (prebuilt at bind vs re-run per evaluation); the deterministic
  // BFS makes the two evaluations equal bit for bit.
  const auto app = apps::mwd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  std::vector<int> mapping;
  for (int core = 0; core < app.num_cores(); ++core) mapping.push_back(core);

  mapping::MapperConfig incremental;
  incremental.faults.spec.kind = FaultSpec::Kind::kEveryLink;
  mapping::MapperConfig reference = incremental;
  reference.incremental_fault_eval = false;

  const mapping::Mapper inc_mapper(incremental);
  const mapping::Mapper ref_mapper(reference);
  mapping::EvalScratch inc_scratch;
  mapping::EvalScratch ref_scratch;
  const auto inc_ctx = inc_mapper.make_context(app, *mesh);
  const auto ref_ctx = ref_mapper.make_context(app, *mesh);
  const auto inc = inc_ctx.evaluate(mapping, inc_scratch);
  const auto ref = ref_ctx.evaluate(mapping, ref_scratch);
  expect_fault_identical(inc, ref);

  // And the full search lands on the same mapping either way.
  const auto inc_result = inc_mapper.map(app, *mesh);
  const auto ref_result = ref_mapper.map(app, *mesh);
  EXPECT_EQ(inc_result.core_to_slot, ref_result.core_to_slot);
  EXPECT_EQ(inc_result.eval.cost, ref_result.eval.cost);
}

TEST(FaultEval, EmptyFaultSetLeavesEvaluationUntouched) {
  const auto app = apps::mwd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  std::vector<int> mapping;
  for (int core = 0; core < app.num_cores(); ++core) mapping.push_back(core);

  mapping::MapperConfig config;  // faults default to kNone
  const mapping::Mapper mapper(config);
  const auto eval = mapper.evaluate(app, *mesh, mapping);
  EXPECT_TRUE(eval.fault_outcomes.empty());
  EXPECT_EQ(eval.worst_fault_cost, 0.0);
  EXPECT_EQ(eval.infeasible_fault_scenarios, 0);
}

TEST(FaultExplorer, FaultSetsAreAGridAxis) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());

  select::ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  FaultSet none;
  FaultSet random;
  random.spec.kind = FaultSpec::Kind::kRandom;
  random.spec.num_scenarios = 2;
  random.spec.faults_per_scenario = 1;
  request.fault_sets = {none, random};
  request.objectives = {mapping::Objective::kMinDelay,
                        mapping::Objective::kMinPower};

  EXPECT_EQ(request.num_points(), 4u);
  const auto points = select::DesignSpaceExplorer::expand(request);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].fault_index, 0);
  EXPECT_EQ(points[2].fault_index, 1);
  EXPECT_TRUE(points[0].config.faults.empty());
  EXPECT_EQ(points[2].config.faults, random);
  EXPECT_EQ(points[0].label().find("/flt-"), std::string::npos);
  EXPECT_NE(points[2].label().find("/flt-rand2x1@1"), std::string::npos);

  select::DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);
  ASSERT_EQ(report.results.size(), 4u);
  for (const auto& candidate : report.results[0].selection.candidates) {
    EXPECT_TRUE(candidate.result.eval.fault_outcomes.empty());
  }
  for (const auto& candidate : report.results[2].selection.candidates) {
    EXPECT_EQ(candidate.result.eval.fault_outcomes.size(), 2u);
  }

  // Robustness columns surface in both report formats.
  const auto csv = io::exploration_report_csv(report);
  EXPECT_NE(csv.find("faults,"), std::string::npos);
  EXPECT_NE(csv.find("fault_scenarios,worst_fault_cost,fault_disconnected"),
            std::string::npos);
  EXPECT_NE(csv.find(",rand2x1@1,"), std::string::npos);
  EXPECT_NE(csv.find(",none,"), std::string::npos);
  const auto json = io::exploration_report_json(report);
  EXPECT_NE(json.find("\"faults\": \"rand2x1@1\""), std::string::npos);
  EXPECT_NE(json.find("\"worst_fault_cost\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_disconnected\""), std::string::npos);
}

}  // namespace
}  // namespace sunmap::fault
