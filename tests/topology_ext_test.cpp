#include <gtest/gtest.h>

#include "graph/paths.h"
#include "topo/octagon.h"

namespace sunmap::topo {
namespace {

TEST(Octagon, Structure) {
  Octagon octagon;
  EXPECT_EQ(octagon.num_switches(), 8);
  EXPECT_EQ(octagon.num_slots(), 8);
  // 8 ring channels + 4 cross channels.
  EXPECT_EQ(octagon.num_network_links(), 12);
  for (graph::NodeId sw = 0; sw < 8; ++sw) {
    EXPECT_EQ(octagon.switch_radix(sw), 4);  // 3 links + core
  }
}

TEST(Octagon, DiameterIsTwoLinks) {
  Octagon octagon;
  for (SlotId a = 0; a < 8; ++a) {
    for (SlotId b = 0; b < 8; ++b) {
      if (a == b) continue;
      EXPECT_LE(octagon.min_switch_hops(a, b), 3);
    }
  }
}

TEST(Octagon, RoutingReachesInAtMostTwoLinks) {
  Octagon octagon;
  for (SlotId a = 0; a < 8; ++a) {
    for (SlotId b = 0; b < 8; ++b) {
      if (a == b) continue;
      const auto path = octagon.dimension_ordered_path(a, b);
      EXPECT_LE(path.size(), 3u);
      EXPECT_EQ(static_cast<int>(path.size()),
                octagon.min_switch_hops(a, b));
      EXPECT_NO_THROW(octagon.make_path(path));
      EXPECT_EQ(path.front(), octagon.ingress_switch(a));
      EXPECT_EQ(path.back(), octagon.egress_switch(b));
    }
  }
}

TEST(Octagon, CrossLinkUsedForOppositeNode) {
  Octagon octagon;
  const auto path = octagon.dimension_ordered_path(1, 5);
  EXPECT_EQ(path, (std::vector<graph::NodeId>{1, 5}));
}

TEST(Star, Structure) {
  Star star(6);
  EXPECT_EQ(star.num_switches(), 7);  // hub + 6 leaves
  EXPECT_EQ(star.num_slots(), 6);
  EXPECT_EQ(star.num_network_links(), 6);
  // Hub has no core: 6 in / 6 out.
  EXPECT_EQ(star.switch_radix(star.hub()), 6);
  // Leaves: hub link + core.
  EXPECT_EQ(star.switch_radix(star.leaf_node(0)), 2);
}

TEST(Star, AllRoutesViaHub) {
  Star star(5);
  for (SlotId a = 0; a < 5; ++a) {
    for (SlotId b = 0; b < 5; ++b) {
      if (a == b) continue;
      EXPECT_EQ(star.min_switch_hops(a, b), 3);
      const auto path = star.dimension_ordered_path(a, b);
      EXPECT_EQ(path.size(), 3u);
      EXPECT_EQ(path[1], star.hub());
      EXPECT_NO_THROW(star.make_path(path));
    }
  }
}

TEST(Star, RejectsTooFewLeaves) {
  EXPECT_THROW(Star(1), std::invalid_argument);
}

TEST(Star, PlacementKeepsHubSeparate) {
  Star star(8);
  const auto placement = star.relative_placement();
  int switches = 0;
  int cores = 0;
  for (const auto& item : placement.items) {
    if (item.kind == RelativePlacement::Item::Kind::kSwitch) ++switches;
    if (item.kind == RelativePlacement::Item::Kind::kCore) ++cores;
  }
  EXPECT_EQ(switches, 9);
  EXPECT_EQ(cores, 8);
}

}  // namespace
}  // namespace sunmap::topo
