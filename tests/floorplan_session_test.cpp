#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "fplan/session.h"
#include "topo/library.h"
#include "util/prng.h"

namespace sunmap::fplan {
namespace {

using topo::Topology;

/// Bitwise floorplan equality: chip dimensions, block order, and every
/// block field must match to the last bit — the session's contract with
/// Floorplanner::place.
void expect_bit_identical(const Floorplan& incremental,
                          const Floorplan& reference,
                          const std::string& where) {
  EXPECT_EQ(incremental.width_mm(), reference.width_mm()) << where;
  EXPECT_EQ(incremental.height_mm(), reference.height_mm()) << where;
  EXPECT_EQ(incremental.area_mm2(), reference.area_mm2()) << where;
  ASSERT_EQ(incremental.blocks().size(), reference.blocks().size()) << where;
  for (std::size_t i = 0; i < reference.blocks().size(); ++i) {
    const auto& a = incremental.blocks()[i];
    const auto& b = reference.blocks()[i];
    EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << where;
    EXPECT_EQ(a.index, b.index) << where;
    EXPECT_EQ(a.x, b.x) << where << " block " << i;
    EXPECT_EQ(a.y, b.y) << where << " block " << i;
    EXPECT_EQ(a.w, b.w) << where << " block " << i;
    EXPECT_EQ(a.h, b.h) << where << " block " << i;
  }
}

/// A pool of distinct shapes (several soft classes with different areas and
/// aspect ranges plus one hard block), so swaps genuinely change the
/// assignment instead of permuting equal shapes.
std::vector<BlockShape> shape_pool() {
  std::vector<BlockShape> pool;
  pool.push_back(BlockShape::soft_block(4.0));
  pool.push_back(BlockShape::soft_block(9.0));
  auto narrow = BlockShape::soft_block(2.25);
  narrow.min_aspect = 0.5;
  narrow.max_aspect = 2.0;
  pool.push_back(narrow);
  pool.push_back(BlockShape::soft_block(1.0));
  pool.push_back(BlockShape::hard_block(1.5, 3.0));
  return pool;
}

struct Workload {
  std::unique_ptr<Topology> topology;
  std::vector<std::optional<BlockShape>> cores;  // per slot, some empty
  std::vector<BlockShape> switches;
};

Workload make_workload(std::unique_ptr<Topology> topology, int used_slots,
                       std::uint64_t seed) {
  Workload w;
  w.topology = std::move(topology);
  const auto pool = shape_pool();
  util::Prng prng(seed);
  w.cores.resize(static_cast<std::size_t>(w.topology->num_slots()));
  for (int s = 0; s < used_slots && s < w.topology->num_slots(); ++s) {
    w.cores[static_cast<std::size_t>(s)] =
        pool[prng.next_below(pool.size())];
  }
  w.switches.reserve(static_cast<std::size_t>(w.topology->num_switches()));
  for (graph::NodeId sw = 0; sw < w.topology->num_switches(); ++sw) {
    auto shape = BlockShape::soft_block(0.2 + 0.05 * (sw % 3));
    shape.min_aspect = 0.5;
    shape.max_aspect = 2.0;
    w.switches.push_back(shape);
  }
  return w;
}

/// Drives `steps` random pairwise slot swaps (core<->core and core<->empty)
/// through one session and asserts bit-identity with a from-scratch place
/// after every step.
void run_swap_sequence(Workload w, Floorplanner::Options options, int steps,
                       std::uint64_t seed) {
  const auto placement = w.topology->relative_placement();
  const Floorplanner reference(options);
  FloorplanSession session(options, placement, w.cores, w.switches);

  expect_bit_identical(session.solve(),
                       reference.place(placement, w.cores, w.switches),
                       w.topology->name() + " initial");

  util::Prng prng(seed);
  const int num_slots = w.topology->num_slots();
  std::vector<SlotShapeUpdate> updates;
  for (int step = 0; step < steps; ++step) {
    const int a = prng.next_int(0, num_slots - 1);
    int b = prng.next_int(0, num_slots - 2);
    if (b >= a) ++b;
    std::swap(w.cores[static_cast<std::size_t>(a)],
              w.cores[static_cast<std::size_t>(b)]);
    updates.clear();
    updates.push_back({a, w.cores[static_cast<std::size_t>(a)]});
    updates.push_back({b, w.cores[static_cast<std::size_t>(b)]});
    session.update_shapes(updates);
    expect_bit_identical(session.solve(),
                         reference.place(placement, w.cores, w.switches),
                         w.topology->name() + " step " +
                             std::to_string(step));
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The probe must have exercised the delta path, not fallen back to full
  // re-derivations throughout.
  EXPECT_GT(session.stats().incremental_solves, 0u);
}

TEST(FloorplanSession, LongSwapSequenceMatchesFromScratchOnMesh) {
  // 12 cores on 16 slots: the sequence moves cores into empty slots too.
  run_swap_sequence(make_workload(topo::make_mesh_for(16), 12, 11),
                    Floorplanner::Options{}, 200, 21);
}

TEST(FloorplanSession, LongSwapSequenceMatchesFromScratchOnTorus) {
  run_swap_sequence(make_workload(topo::make_torus_for(16), 16, 12),
                    Floorplanner::Options{}, 200, 22);
}

TEST(FloorplanSession, LongSwapSequenceMatchesFromScratchOnButterfly) {
  // Columns-mode placement (the butterfly's flanked layout).
  run_swap_sequence(make_workload(topo::make_butterfly_for(16), 14, 13),
                    Floorplanner::Options{}, 200, 23);
}

TEST(FloorplanSession, SimplexEngineMatchesFromScratch) {
  Floorplanner::Options options;
  options.engine = Floorplanner::Engine::kSimplexLp;
  run_swap_sequence(make_workload(topo::make_mesh_for(8), 6, 14), options, 25,
                    24);
  run_swap_sequence(make_workload(topo::make_butterfly_for(8), 6, 14), options,
                    25, 24);
}

TEST(FloorplanSession, NoSizingPassesMatchesFromScratch) {
  Floorplanner::Options options;
  options.sizing_passes = 0;
  run_swap_sequence(make_workload(topo::make_mesh_for(16), 12, 15),
                    Floorplanner::Options{options}, 120, 25);
}

TEST(FloorplanSession, LargeDeltaFallsBackToFullSolve) {
  auto w = make_workload(topo::make_mesh_for(16), 12, 16);
  const auto placement = w.topology->relative_placement();
  const Floorplanner reference;
  FloorplanSession session({}, placement, w.cores, w.switches);
  (void)session.solve();
  const auto full_before = session.stats().full_solves;

  // Replace the entire assignment with fresh shapes: every slot changes,
  // so patching two aggregates at a time would be pointless — the session
  // must re-derive.
  std::vector<SlotShapeUpdate> updates;
  for (int s = 0; s < w.topology->num_slots(); ++s) {
    w.cores[static_cast<std::size_t>(s)] =
        BlockShape::soft_block(1.0 + 0.25 * s);
    updates.push_back({s, w.cores[static_cast<std::size_t>(s)]});
  }
  session.update_shapes(updates);
  expect_bit_identical(session.solve(),
                       reference.place(placement, w.cores, w.switches),
                       "shuffled");
  EXPECT_GT(session.stats().full_solves, full_before);
}

TEST(FloorplanSession, NoOpUpdatesAreCached) {
  auto w = make_workload(topo::make_mesh_for(16), 12, 17);
  FloorplanSession session({}, w.topology->relative_placement(), w.cores,
                           w.switches);
  (void)session.solve();
  const auto solves = session.stats().solves;

  // Re-sending the current shapes must not trigger a re-solve.
  std::vector<SlotShapeUpdate> updates;
  for (int s = 0; s < w.topology->num_slots(); ++s) {
    updates.push_back({s, w.cores[static_cast<std::size_t>(s)]});
  }
  session.update_shapes(updates);
  (void)session.solve();
  EXPECT_EQ(session.stats().solves, solves);
  EXPECT_GT(session.stats().cached_solves, 0u);
}

// ---- Speculative frames (push_shapes / pop_shapes / commit_shapes). ----

/// Drives a randomized accept/reject (commit/rollback) sequence through one
/// session: each step speculates a pairwise swap with push_shapes, solves
/// (sometimes), then either commits it into the baseline or pops it back.
/// After every solve the result must equal the from-scratch place of
/// whatever assignment is current, and after every pop the session must be
/// bit-identically back on the committed baseline.
void run_accept_reject_sequence(Workload w, Floorplanner::Options options,
                                int steps, std::uint64_t seed) {
  const auto placement = w.topology->relative_placement();
  const Floorplanner reference(options);
  FloorplanSession session(options, placement, w.cores, w.switches);
  (void)session.solve();

  util::Prng prng(seed);
  const int num_slots = w.topology->num_slots();
  std::vector<SlotShapeUpdate> updates;
  auto speculative = w.cores;  // the assignment under open frames
  for (int step = 0; step < steps; ++step) {
    const int a = prng.next_int(0, num_slots - 1);
    int b = prng.next_int(0, num_slots - 2);
    if (b >= a) ++b;
    speculative = w.cores;
    std::swap(speculative[static_cast<std::size_t>(a)],
              speculative[static_cast<std::size_t>(b)]);
    updates.clear();
    updates.push_back({a, speculative[static_cast<std::size_t>(a)]});
    updates.push_back({b, speculative[static_cast<std::size_t>(b)]});
    session.push_shapes(updates);

    // Usually evaluate the speculation; sometimes abandon it unsolved (the
    // pruned-candidate path), which must leave the pre-push cached solve
    // valid after the pop.
    const bool solve_speculation = prng.chance(0.8);
    if (solve_speculation) {
      expect_bit_identical(
          session.solve(),
          reference.place(placement, speculative, w.switches),
          w.topology->name() + " speculation " + std::to_string(step));
    }

    // Occasionally nest a second frame on top (a second no-op or real
    // delta) before settling, like a prune-then-evaluate pair does.
    const bool nested = prng.chance(0.25);
    if (nested) {
      session.push_shapes(updates);  // no-op relative to the open frame
      if (prng.chance(0.5)) (void)session.solve();
      session.pop_shapes();
    }

    if (prng.chance(0.5)) {
      session.commit_shapes();
      w.cores = speculative;
    } else {
      session.pop_shapes();
      // The rolled-back session must solve to the committed baseline.
      expect_bit_identical(session.solve(),
                           reference.place(placement, w.cores, w.switches),
                           w.topology->name() + " rollback " +
                               std::to_string(step));
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(session.stats().incremental_solves, 0u);
}

TEST(FloorplanSessionTxn, AcceptRejectSequenceMatchesFromScratchOnMesh) {
  run_accept_reject_sequence(make_workload(topo::make_mesh_for(16), 12, 31),
                             Floorplanner::Options{}, 120, 41);
}

TEST(FloorplanSessionTxn, AcceptRejectSequenceMatchesFromScratchOnTorus) {
  run_accept_reject_sequence(make_workload(topo::make_torus_for(16), 16, 32),
                             Floorplanner::Options{}, 120, 42);
}

TEST(FloorplanSessionTxn, AcceptRejectSequenceMatchesFromScratchOnButterfly) {
  run_accept_reject_sequence(
      make_workload(topo::make_butterfly_for(16), 14, 33),
      Floorplanner::Options{}, 120, 43);
}

TEST(FloorplanSessionTxn, AcceptRejectSequenceMatchesUnderSimplexEngine) {
  Floorplanner::Options options;
  options.engine = Floorplanner::Engine::kSimplexLp;
  run_accept_reject_sequence(make_workload(topo::make_mesh_for(8), 6, 34),
                             options, 20, 44);
  run_accept_reject_sequence(make_workload(topo::make_butterfly_for(8), 6, 34),
                             options, 20, 44);
}

TEST(FloorplanSessionTxn, RollbackAfterFallbackRestoresExactState) {
  auto w = make_workload(topo::make_mesh_for(16), 12, 35);
  const auto placement = w.topology->relative_placement();
  const Floorplanner reference;
  FloorplanSession session({}, placement, w.cores, w.switches);
  (void)session.solve();

  // Push a frame large enough to trip the quarter-dirty full-solve
  // fallback, solve through it, then roll back: the surgical aggregate
  // restoration is off the table, so the pop must schedule a full
  // re-derivation and still land bit-identically on the baseline.
  auto speculative = w.cores;
  std::vector<SlotShapeUpdate> updates;
  for (int s = 0; s < w.topology->num_slots(); ++s) {
    speculative[static_cast<std::size_t>(s)] =
        BlockShape::soft_block(2.0 + 0.5 * s);
    updates.push_back({s, speculative[static_cast<std::size_t>(s)]});
  }
  session.push_shapes(updates);
  expect_bit_identical(session.solve(),
                       reference.place(placement, speculative, w.switches),
                       "fallback speculation");
  session.pop_shapes();
  expect_bit_identical(session.solve(),
                       reference.place(placement, w.cores, w.switches),
                       "rollback after fallback");

  // And the session keeps working incrementally afterwards.
  std::swap(w.cores[0], w.cores[5]);
  updates.clear();
  updates.push_back({0, w.cores[0]});
  updates.push_back({5, w.cores[5]});
  session.update_shapes(updates);
  expect_bit_identical(session.solve(),
                       reference.place(placement, w.cores, w.switches),
                       "post-fallback delta");
}

TEST(FloorplanSessionTxn, NestedNoOpFramesPreserveCachedSolve) {
  auto w = make_workload(topo::make_mesh_for(16), 12, 36);
  FloorplanSession session({}, w.topology->relative_placement(), w.cores,
                           w.switches);
  (void)session.solve();
  const auto solves = session.stats().solves;

  // Frames whose deltas are no-ops (same shapes) must neither dirty the
  // session nor invalidate the cached solution — popping them lands back
  // on a still-cached solve.
  std::vector<SlotShapeUpdate> updates;
  for (int s = 0; s < 4; ++s) {
    updates.push_back({s, w.cores[static_cast<std::size_t>(s)]});
  }
  session.push_shapes(updates);
  session.push_shapes(updates);
  EXPECT_EQ(session.journal_depth(), 2);
  (void)session.solve();
  session.pop_shapes();
  session.pop_shapes();
  (void)session.solve();
  EXPECT_EQ(session.stats().solves, solves);
  EXPECT_GT(session.stats().cached_solves, 0u);
}

TEST(FloorplanSessionTxn, UpdateShapesUnderOpenFrameThrows) {
  auto w = make_workload(topo::make_mesh_for(16), 12, 37);
  FloorplanSession session({}, w.topology->relative_placement(), w.cores,
                           w.switches);
  std::vector<SlotShapeUpdate> updates;
  updates.push_back({0, BlockShape::soft_block(5.0)});
  session.push_shapes(updates);
  EXPECT_THROW(session.update_shapes(updates), std::logic_error);
  session.pop_shapes();
  session.update_shapes(updates);  // settled again: legal
}

TEST(FloorplanSessionTxn, PopWithoutFrameThrows) {
  auto w = make_workload(topo::make_mesh_for(16), 12, 38);
  FloorplanSession session({}, w.topology->relative_placement(), w.cores,
                           w.switches);
  EXPECT_THROW(session.pop_shapes(), std::logic_error);
  std::vector<SlotShapeUpdate> updates;
  updates.push_back({0, BlockShape::soft_block(5.0)});
  session.push_shapes(updates);
  session.commit_shapes();
  EXPECT_EQ(session.journal_depth(), 0);
  EXPECT_THROW(session.pop_shapes(), std::logic_error);
}

TEST(FloorplanSession, UpdatesForUnplacedSlotsAreIgnored) {
  auto w = make_workload(topo::make_mesh_for(16), 12, 18);
  FloorplanSession session({}, w.topology->relative_placement(), w.cores,
                           w.switches);
  const Floorplan before = session.solve();
  std::vector<SlotShapeUpdate> updates;
  updates.push_back({w.topology->num_slots() + 5, BlockShape::soft_block(7.0)});
  updates.push_back({-1, std::nullopt});
  session.update_shapes(updates);
  expect_bit_identical(session.solve(), before, "unplaced slots");
}

}  // namespace
}  // namespace sunmap::fplan
