#include <gtest/gtest.h>

#include <limits>

#include "apps/apps.h"
#include "io/exploration_io.h"
#include "mapping/eval_context.h"
#include "select/explorer.h"
#include "topo/library.h"

namespace sunmap::select {
namespace {

constexpr mapping::Objective kSweepObjectives[] = {
    mapping::Objective::kMinDelay, mapping::Objective::kMinArea,
    mapping::Objective::kMinPower};

ExplorationRequest full_sweep(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library) {
  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.base.link_bandwidth_mbps = 500.0;
  request.objectives.assign(std::begin(kSweepObjectives),
                            std::end(kSweepObjectives));
  request.routings.assign(std::begin(route::kAllRoutingKinds),
                          std::end(route::kAllRoutingKinds));
  return request;
}

void expect_identical(const SelectionReport& batched,
                      const SelectionReport& naive, const std::string& label) {
  ASSERT_EQ(batched.candidates.size(), naive.candidates.size()) << label;
  EXPECT_EQ(batched.best_index, naive.best_index) << label;
  for (std::size_t t = 0; t < naive.candidates.size(); ++t) {
    const auto& b = batched.candidates[t].result;
    const auto& n = naive.candidates[t].result;
    EXPECT_EQ(b.core_to_slot, n.core_to_slot) << label;
    EXPECT_EQ(b.slot_to_core, n.slot_to_core) << label;
    EXPECT_EQ(b.evaluated_mappings, n.evaluated_mappings) << label;
    EXPECT_EQ(b.pruned_mappings, n.pruned_mappings) << label;
    // Bit-identical evaluations: exact double equality, no tolerance.
    EXPECT_EQ(b.eval.cost, n.eval.cost) << label;
    EXPECT_EQ(b.eval.avg_switch_hops, n.eval.avg_switch_hops) << label;
    EXPECT_EQ(b.eval.avg_path_latency_ns, n.eval.avg_path_latency_ns)
        << label;
    EXPECT_EQ(b.eval.design_area_mm2, n.eval.design_area_mm2) << label;
    EXPECT_EQ(b.eval.design_power_mw, n.eval.design_power_mw) << label;
    EXPECT_EQ(b.eval.max_link_load_mbps, n.eval.max_link_load_mbps) << label;
    EXPECT_EQ(b.eval.feasible(), n.eval.feasible()) << label;
  }
}

TEST(Explorer, SearchStrategyAndRestartAxesSweepBitIdentically) {
  // The ROADMAP follow-on axes: search strategy and restart count expand
  // the grid like any other axis and every point matches the per-config
  // selector run, sharing one context per topology.
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.base.annealing_iterations = 300;
  request.searches = {mapping::SearchKind::kGreedySwaps,
                      mapping::SearchKind::kRestartAnnealing};
  request.restart_counts = {2, 4};
  EXPECT_EQ(request.num_points(), 4u);

  const auto points = DesignSpaceExplorer::expand(request);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].config.search, mapping::SearchKind::kGreedySwaps);
  EXPECT_EQ(points[0].config.annealing_restarts, 2);
  EXPECT_EQ(points[1].config.annealing_restarts, 4);
  EXPECT_EQ(points[2].config.search,
            mapping::SearchKind::kRestartAnnealing);
  EXPECT_EQ(points[3].search_index, 1);
  EXPECT_EQ(points[3].restarts_index, 1);
  EXPECT_NE(points[3].label().find("restart-annealing-x4"),
            std::string::npos);

  const auto contexts_before = mapping::EvalContext::contexts_built();
  DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);
  EXPECT_EQ(mapping::EvalContext::contexts_built() - contexts_before,
            library.size());
  ASSERT_EQ(report.results.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    TopologySelector selector(points[p].config);
    expect_identical(report.results[p].selection,
                     selector.select(app, library),
                     report.results[p].point.label());
  }
}

TEST(Explorer, FloorplanAndSwapPassAxesSweepBitIdentically) {
  // The remaining ROADMAP sweep axes: floorplan options (engine + sizing
  // passes) and the greedy search's swap-pass schedule. Floorplan options
  // vary slowest (their move is the one that clears the floorplan cache and
  // sessions), swap passes sit just above the objective.
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  fplan::Floorplanner::Options sized;   // default: lp engine, 2 passes
  fplan::Floorplanner::Options rigid;
  rigid.sizing_passes = 0;
  request.floorplan_options = {sized, rigid};
  request.swap_passes = {1, 2};
  request.objectives = {mapping::Objective::kMinArea};
  EXPECT_EQ(request.num_points(), 4u);

  const auto points = DesignSpaceExplorer::expand(request);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].config.floorplan.sizing_passes, 2);
  EXPECT_EQ(points[0].config.swap_passes, 1);
  EXPECT_EQ(points[1].config.swap_passes, 2);
  EXPECT_EQ(points[2].config.floorplan.sizing_passes, 0);
  EXPECT_EQ(points[2].fplan_index, 1);
  EXPECT_EQ(points[3].swap_passes_index, 1);
  EXPECT_NE(points[1].label().find("/sp2"), std::string::npos);
  EXPECT_NE(points[2].label().find("/fp-lp-sz0"), std::string::npos);
  EXPECT_EQ(points[0].label().find("/fp-"), std::string::npos);

  const auto contexts_before = mapping::EvalContext::contexts_built();
  DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);
  EXPECT_EQ(mapping::EvalContext::contexts_built() - contexts_before,
            library.size());
  ASSERT_EQ(report.results.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    TopologySelector selector(points[p].config);
    expect_identical(report.results[p].selection,
                     selector.select(app, library),
                     report.results[p].point.label());
  }
  // Less sizing freedom can never shrink the best min-area design.
  const auto best_cost = [&](std::size_t p) {
    return report.results[p].selection.best()->result.eval.cost;
  };
  EXPECT_LE(best_cost(1), best_cost(3) + 1e-9);
}

TEST(Explorer, ExpandsGridObjectiveInnermostRoutingOutermost) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  auto request = full_sweep(app, library);
  request.link_bandwidths_mbps = {400.0, 500.0};
  EXPECT_EQ(request.num_points(), 24u);

  const auto points = DesignSpaceExplorer::expand(request);
  ASSERT_EQ(points.size(), 24u);
  // Objective varies fastest, then bandwidth, routing outermost.
  EXPECT_EQ(points[0].config.objective, mapping::Objective::kMinDelay);
  EXPECT_EQ(points[1].config.objective, mapping::Objective::kMinArea);
  EXPECT_EQ(points[2].config.objective, mapping::Objective::kMinPower);
  EXPECT_EQ(points[0].config.link_bandwidth_mbps, 400.0);
  EXPECT_EQ(points[3].config.link_bandwidth_mbps, 500.0);
  EXPECT_EQ(points[0].config.routing, route::RoutingKind::kDimensionOrdered);
  EXPECT_EQ(points[6].config.routing, route::RoutingKind::kMinPath);
  EXPECT_EQ(points[23].config.routing, route::RoutingKind::kSplitAll);
  EXPECT_EQ(points[23].config.objective, mapping::Objective::kMinPower);
  // Empty axes fall back to the base config.
  ExplorationRequest single;
  single.app = &app;
  single.library = &library;
  single.base.objective = mapping::Objective::kMinPower;
  const auto one = DesignSpaceExplorer::expand(single);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].config.objective, mapping::Objective::kMinPower);
}

// The acceptance bar of the batch API: a 3-objective x 4-routing sweep over
// the full topology library returns results bit-identical to running
// TopologySelector::select once per configuration, while building each
// topology's evaluation context exactly once.
TEST(Explorer, FullSweepBitIdenticalToPerConfigSelectBuildsContextsOnce) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto request = full_sweep(app, library);
  const auto points = DesignSpaceExplorer::expand(request);
  ASSERT_EQ(points.size(), 12u);

  const auto contexts_before = mapping::EvalContext::contexts_built();
  DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);
  const auto contexts_built =
      mapping::EvalContext::contexts_built() - contexts_before;
  // One context per (app, topology) pair for the entire 12-point sweep.
  EXPECT_EQ(contexts_built, library.size());

  ASSERT_EQ(report.results.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    TopologySelector selector(points[p].config);
    const auto naive = selector.select(app, library);
    expect_identical(report.results[p].selection, naive,
                     report.results[p].point.label());
  }
}

TEST(Explorer, ParallelSweepMatchesSequential) {
  const auto app = apps::mwd();
  const auto library = topo::standard_library(app.num_cores());
  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.objectives = {mapping::Objective::kMinDelay,
                        mapping::Objective::kMinArea};
  request.routings = {route::RoutingKind::kDimensionOrdered,
                      route::RoutingKind::kMinPath};

  DesignSpaceExplorer explorer;
  const auto sequential = explorer.explore(request);
  request.num_threads = 4;
  const auto parallel = explorer.explore(request);

  ASSERT_EQ(parallel.results.size(), sequential.results.size());
  for (std::size_t p = 0; p < sequential.results.size(); ++p) {
    expect_identical(parallel.results[p].selection,
                     sequential.results[p].selection,
                     sequential.results[p].point.label());
  }
  ASSERT_EQ(parallel.winners.size(), sequential.winners.size());
  for (std::size_t w = 0; w < sequential.winners.size(); ++w) {
    EXPECT_EQ(parallel.winners[w].point_index,
              sequential.winners[w].point_index);
    EXPECT_EQ(parallel.winners[w].topology_index,
              sequential.winners[w].topology_index);
  }
}

TEST(Explorer, WinnersAreGridMinimaPerObjective) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  auto request = full_sweep(app, library);
  request.routings = {route::RoutingKind::kMinPath,
                      route::RoutingKind::kSplitMin};
  DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);

  ASSERT_EQ(report.winners.size(), 3u);
  for (const auto& best : report.winners) {
    ASSERT_TRUE(best.found());
    const auto* candidate = report.winner(best.objective);
    ASSERT_NE(candidate, nullptr);
    ASSERT_TRUE(candidate->feasible());
    for (const auto& result : report.results) {
      if (result.point.config.objective != best.objective) continue;
      for (const auto& other : result.selection.candidates) {
        if (!other.feasible()) continue;
        EXPECT_LE(candidate->result.eval.cost, other.result.eval.cost);
      }
    }
  }
  // An objective that was not swept has no winner.
  EXPECT_EQ(report.winner(mapping::Objective::kWeighted), nullptr);
}

TEST(Explorer, WeightedObjectiveGetsOneWinnerPerWeightSet) {
  // Costs computed under different weight vectors are not on a common
  // scale, so a weighted sweep must not pool them into one winner.
  const auto app = apps::mwd();
  const auto library = topo::standard_library(app.num_cores());
  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.objectives = {mapping::Objective::kWeighted};
  mapping::ObjectiveWeights delay_heavy;
  delay_heavy.delay = 10.0;
  mapping::ObjectiveWeights power_heavy;
  power_heavy.power = 1000.0;  // costs ~100x the delay-heavy scale
  request.weight_sets = {delay_heavy, power_heavy};

  DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);
  ASSERT_EQ(report.results.size(), 2u);
  ASSERT_EQ(report.winners.size(), 2u);
  for (std::size_t w = 0; w < report.winners.size(); ++w) {
    const auto& best = report.winners[w];
    EXPECT_EQ(best.objective, mapping::Objective::kWeighted);
    EXPECT_EQ(best.weights_index, static_cast<int>(w));
    ASSERT_TRUE(best.found());
    // The winner must come from its own weight set's design point.
    EXPECT_EQ(report.results[static_cast<std::size_t>(best.point_index)]
                  .point.weights_index,
              static_cast<int>(w));
  }
}

TEST(Explorer, AllInfeasibleLibraryYieldsNullWinnersAndEmptyPareto) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  auto request = full_sweep(app, library);
  request.base.link_bandwidth_mbps = 1.0;  // nothing fits
  request.link_bandwidths_mbps = {1.0};
  DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);

  for (const auto& result : report.results) {
    EXPECT_EQ(result.selection.best_index, -1);
    EXPECT_EQ(result.selection.best(), nullptr);
  }
  ASSERT_EQ(report.winners.size(), 3u);
  for (const auto& best : report.winners) {
    EXPECT_FALSE(best.found());
    EXPECT_EQ(report.winner(best.objective), nullptr);
  }
  EXPECT_TRUE(report.pareto.empty());
}

TEST(Explorer, ParetoFrontierCoversFeasibleCells) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.objectives = {mapping::Objective::kMinArea,
                        mapping::Objective::kMinPower};
  request.routings = {route::RoutingKind::kMinPath};
  DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);

  ASSERT_FALSE(report.pareto.empty());
  // Frontier is sorted by area and strictly decreasing in power, and no
  // feasible cell dominates a frontier point.
  for (std::size_t i = 1; i < report.pareto.size(); ++i) {
    EXPECT_GT(report.pareto[i].area_mm2, report.pareto[i - 1].area_mm2);
    EXPECT_LT(report.pareto[i].power_mw, report.pareto[i - 1].power_mw);
  }
  for (const auto& point : report.pareto) {
    for (const auto& result : report.results) {
      for (const auto& candidate : result.selection.candidates) {
        if (!candidate.feasible()) continue;
        const auto& eval = candidate.result.eval;
        EXPECT_FALSE(eval.design_area_mm2 < point.area_mm2 - 1e-12 &&
                     eval.design_power_mw < point.power_mw - 1e-12);
      }
    }
  }
}

TEST(Explorer, StreamedPointsMatchBufferedExploreInGridOrder) {
  // Request-level result streaming (ROADMAP follow-on from PR 2): with
  // on_point set the explorer hands every PointResult over in exact grid
  // order, bit-identical to the buffered run, keeps no per-point results,
  // and still reports identical winners and Pareto frontier.
  const auto app = apps::vopd();
  auto library = topo::standard_library(app.num_cores());
  library.resize(2);
  auto request = full_sweep(app, library);

  DesignSpaceExplorer explorer;
  const auto buffered = explorer.explore(request);
  const auto points = DesignSpaceExplorer::expand(request);

  std::vector<PointResult> streamed;
  request.on_point = [&](const PointResult& result) {
    streamed.push_back(result);
  };
  const auto report = explorer.explore(request);

  EXPECT_TRUE(report.results.empty());
  ASSERT_EQ(streamed.size(), buffered.results.size());
  ASSERT_EQ(streamed.size(), points.size());
  for (std::size_t p = 0; p < streamed.size(); ++p) {
    EXPECT_EQ(streamed[p].point.label(), points[p].label());
    expect_identical(streamed[p].selection, buffered.results[p].selection,
                     "streamed point " + std::to_string(p));
  }

  ASSERT_EQ(report.winners.size(), buffered.winners.size());
  for (std::size_t w = 0; w < report.winners.size(); ++w) {
    EXPECT_EQ(report.winners[w].objective, buffered.winners[w].objective);
    EXPECT_EQ(report.winners[w].weights_index,
              buffered.winners[w].weights_index);
    EXPECT_EQ(report.winners[w].point_index, buffered.winners[w].point_index);
    EXPECT_EQ(report.winners[w].topology_index,
              buffered.winners[w].topology_index);
  }
  ASSERT_EQ(report.pareto.size(), buffered.pareto.size());
  for (std::size_t i = 0; i < report.pareto.size(); ++i) {
    EXPECT_EQ(report.pareto[i].area_mm2, buffered.pareto[i].area_mm2);
    EXPECT_EQ(report.pareto[i].power_mw, buffered.pareto[i].power_mw);
  }
  // No buffered results to point into: the accessor answers nullptr rather
  // than dangling.
  EXPECT_EQ(report.winner(mapping::Objective::kMinDelay), nullptr);
}

TEST(Explorer, StreamingIsThreadCountInvariant) {
  const auto app = apps::vopd();
  auto library = topo::standard_library(app.num_cores());
  library.resize(3);
  auto request = full_sweep(app, library);
  request.objectives.resize(2);
  request.routings.resize(2);

  std::vector<double> costs_seq;
  request.on_point = [&](const PointResult& result) {
    for (const auto& candidate : result.selection.candidates) {
      costs_seq.push_back(candidate.result.eval.cost);
    }
  };
  DesignSpaceExplorer explorer;
  (void)explorer.explore(request);

  std::vector<double> costs_par;
  request.num_threads = 3;
  request.on_point = [&](const PointResult& result) {
    for (const auto& candidate : result.selection.candidates) {
      costs_par.push_back(candidate.result.eval.cost);
    }
  };
  (void)explorer.explore(request);
  EXPECT_EQ(costs_seq, costs_par);
}

TEST(Explorer, ValidatesRequest) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  DesignSpaceExplorer explorer;

  ExplorationRequest no_app;
  no_app.library = &library;
  EXPECT_THROW(explorer.explore(no_app), std::invalid_argument);

  ExplorationRequest no_library;
  no_library.app = &app;
  EXPECT_THROW(explorer.explore(no_library), std::invalid_argument);

  ExplorationRequest bad_threads;
  bad_threads.app = &app;
  bad_threads.library = &library;
  bad_threads.num_threads = 0;
  EXPECT_THROW(explorer.explore(bad_threads), std::invalid_argument);

  // Invalid axis values surface through MapperConfig::validate.
  ExplorationRequest bad_bandwidth;
  bad_bandwidth.app = &app;
  bad_bandwidth.library = &library;
  bad_bandwidth.link_bandwidths_mbps = {500.0, -1.0};
  EXPECT_THROW(explorer.explore(bad_bandwidth), std::invalid_argument);
}

TEST(Explorer, SelectorIsSinglePointWrapper) {
  const auto app = apps::mwd();
  const auto library = topo::standard_library(app.num_cores());
  mapping::MapperConfig config;
  config.routing = route::RoutingKind::kDimensionOrdered;

  TopologySelector selector(config);
  const auto via_selector = selector.select(app, library);

  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.base = config;
  DesignSpaceExplorer explorer;
  const auto via_explorer = explorer.explore(request);
  ASSERT_EQ(via_explorer.results.size(), 1u);
  expect_identical(via_explorer.results.front().selection, via_selector,
                   "single-point");
}

TEST(ExplorationIo, CsvHasOneRowPerCell) {
  const auto app = apps::mwd();
  const auto library = topo::standard_library(app.num_cores());
  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.objectives = {mapping::Objective::kMinDelay,
                        mapping::Objective::kMinArea};
  DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);

  const auto csv = io::exploration_report_csv(report);
  std::size_t rows = 0;
  for (char c : csv) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, 1 + report.results.size() * library.size());
  EXPECT_NE(csv.find("point,shard,worker,routing,objective"),
            std::string::npos);
  EXPECT_NE(csv.find("swap_passes,fplan_engine,fplan_sizing_passes"),
            std::string::npos);
  // In-process points carry no distributed provenance: empty cells.
  EXPECT_NE(csv.find("0,,,"), std::string::npos);
  EXPECT_NE(csv.find(",lp,"), std::string::npos);
  EXPECT_NE(csv.find("min-delay"), std::string::npos);
  EXPECT_NE(csv.find("mesh"), std::string::npos);
}

TEST(ExplorationIo, JsonContainsPointsWinnersPareto) {
  const auto app = apps::mwd();
  const auto library = topo::standard_library(app.num_cores());
  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.objectives = {mapping::Objective::kMinDelay};
  DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);

  const auto json = io::exploration_report_json(report);
  EXPECT_NE(json.find("\"points\""), std::string::npos);
  EXPECT_NE(json.find("\"winners\""), std::string::npos);
  EXPECT_NE(json.find("\"pareto\""), std::string::npos);
  EXPECT_NE(json.find("\"objective\": \"min-delay\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\": null"), std::string::npos);
  EXPECT_NE(json.find("\"worker\": null"), std::string::npos);
  EXPECT_NE(json.find("\"swap_passes\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"fplan_engine\": \"lp\""), std::string::npos);
  EXPECT_NE(json.find("\"fplan_sizing_passes\": 2"), std::string::npos);
  // An unconstrained area cap must be emitted as null, not infinity.
  EXPECT_NE(json.find("\"max_area_mm2\": null"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace sunmap::select
