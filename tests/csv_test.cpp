#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "apps/apps.h"
#include "io/csv.h"
#include "topo/library.h"

namespace sunmap::io {
namespace {

TEST(Csv, SelectionReportHasHeaderAndRows) {
  const auto app = apps::dsp_filter();
  const auto library = topo::standard_library(app.num_cores());
  mapping::MapperConfig config;
  config.link_bandwidth_mbps = 1000.0;
  select::TopologySelector selector(config);
  const auto report = selector.select(app, library);

  const auto csv = selection_report_csv(report);
  // Header + one line per candidate.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, static_cast<long>(report.candidates.size()) + 1);
  EXPECT_EQ(csv.rfind("topology,feasible,", 0), 0u);
  for (const auto& candidate : report.candidates) {
    EXPECT_NE(csv.find(candidate.topology->name()), std::string::npos);
  }
}

TEST(Csv, QuotesFieldsWithCommas) {
  // Topology names like "4-ary 2-fly" have no commas, but the quoting path
  // must still be correct for custom names.
  const std::vector<select::ParetoPoint> frontier{{1.5, 2.5}, {3.0, 1.0}};
  const auto csv = pareto_csv(frontier);
  EXPECT_EQ(csv, "area_mm2,power_mw\n1.5,2.5\n3,1\n");
}

TEST(Csv, SeriesLayout) {
  const auto csv = series_csv("rate", {0.1, 0.2},
                              {{"mesh", {5.0, 6.0}}, {"clos", {4.0, 4.5}}});
  EXPECT_EQ(csv, "rate,mesh,clos\n0.1,5,4\n0.2,6,4.5\n");
}

TEST(Csv, SeriesLengthMismatchThrows) {
  EXPECT_THROW(series_csv("x", {1.0}, {{"bad", {1.0, 2.0}}}),
               std::invalid_argument);
}

TEST(Csv, WriteFileRoundTrips) {
  const auto path =
      (std::filesystem::temp_directory_path() / "sunmap_csv_test.csv")
          .string();
  write_file(path, "a,b\n1,2\n");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a,b\n1,2\n");
  std::filesystem::remove(path);
}

TEST(Csv, WriteFileFailsOnBadPath) {
  EXPECT_THROW(write_file("/nonexistent_dir/x.csv", "data"),
               std::runtime_error);
}

}  // namespace
}  // namespace sunmap::io
