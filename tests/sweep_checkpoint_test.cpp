#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "select/explorer.h"
#include "sweep/checkpoint.h"
#include "sweep/coordinator.h"
#include "sweep/wire.h"
#include "topo/library.h"

namespace sunmap::sweep {
namespace {

select::ExplorationRequest small_request(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library) {
  select::ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.objectives = {mapping::Objective::kMinDelay,
                        mapping::Objective::kMinArea,
                        mapping::Objective::kMinPower};
  request.routings.assign(std::begin(route::kAllRoutingKinds),
                          std::end(route::kAllRoutingKinds));
  return request;
}

PointRecord sample_record(std::uint64_t index) {
  PointRecord record;
  record.point_index = index;
  record.shard_index = static_cast<std::int32_t>(index % 3);
  record.worker_id = static_cast<std::int32_t>(index % 2);
  CandidateScalars scalars;
  scalars.bandwidth_feasible = true;
  scalars.area_feasible = true;
  scalars.cost = 1.25 * static_cast<double>(index + 1);
  scalars.core_to_slot = {0, 1, 2, 3};
  record.candidates = {scalars, scalars};
  return record;
}

std::string temp_journal(const char* name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Checkpoint, JournalRoundTripsHeaderAndRecords) {
  const auto path = temp_journal("journal_roundtrip.ckpt");
  JournalHeader header;
  header.fingerprint = 0x0123456789abcdefULL;
  header.description = "vopd sweep, 12 points";
  {
    auto writer = JournalWriter::create(path, header);
    for (std::uint64_t i = 0; i < 5; ++i) writer.append(sample_record(i));
    writer.close();
  }
  const auto contents = read_journal(path);
  EXPECT_EQ(contents.header.version, kJournalVersion);
  EXPECT_EQ(contents.header.fingerprint, header.fingerprint);
  EXPECT_EQ(contents.header.description, header.description);
  EXPECT_FALSE(contents.tail_truncated);
  ASSERT_EQ(contents.records.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(contents.records[i].point_index, i);
    ASSERT_EQ(contents.records[i].candidates.size(), 2u);
    EXPECT_EQ(contents.records[i].candidates[0].cost,
              1.25 * static_cast<double>(i + 1));
    EXPECT_EQ(contents.records[i].candidates[0].core_to_slot,
              (std::vector<std::int32_t>{0, 1, 2, 3}));
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedTailRecoversWholeRecords) {
  const auto path = temp_journal("journal_truncated.ckpt");
  {
    auto writer = JournalWriter::create(path, JournalHeader{});
    for (std::uint64_t i = 0; i < 4; ++i) writer.append(sample_record(i));
    writer.close();
  }
  auto bytes = slurp(path);
  const auto intact = read_journal(path);
  ASSERT_EQ(intact.records.size(), 4u);
  // Chop mid-way through the last record: a crash mid-append.
  bytes.resize(bytes.size() - 7);
  dump(path, bytes);

  const auto contents = read_journal(path);
  EXPECT_TRUE(contents.tail_truncated);
  ASSERT_EQ(contents.records.size(), 3u);
  EXPECT_LT(contents.valid_bytes, bytes.size());

  // Appending after recovery truncates the damaged tail first, so the
  // journal reads clean again.
  {
    auto writer =
        JournalWriter::open_for_append(path, contents.valid_bytes);
    writer.append(sample_record(3));
    writer.close();
  }
  const auto repaired = read_journal(path);
  EXPECT_FALSE(repaired.tail_truncated);
  ASSERT_EQ(repaired.records.size(), 4u);
  EXPECT_EQ(repaired.records[3].point_index, 3u);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptTailByteStopsAtLastGoodRecord) {
  const auto path = temp_journal("journal_corrupt.ckpt");
  {
    auto writer = JournalWriter::create(path, JournalHeader{});
    for (std::uint64_t i = 0; i < 3; ++i) writer.append(sample_record(i));
    writer.close();
  }
  auto bytes = slurp(path);
  bytes[bytes.size() - 2] ^= 0x5a;  // Flip a byte inside the last record.
  dump(path, bytes);
  const auto contents = read_journal(path);
  EXPECT_TRUE(contents.tail_truncated);  // CRC catches the damage.
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[1].point_index, 1u);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsForeignMagicAndFutureVersion) {
  const auto path = temp_journal("journal_badheader.ckpt");
  dump(path, {'N', 'O', 'T', 'A', 'J', 'N', 'L', '!', 0, 0, 0, 0});
  EXPECT_THROW((void)read_journal(path), std::runtime_error);

  {
    auto writer = JournalWriter::create(path, JournalHeader{});
    writer.close();
  }
  auto bytes = slurp(path);
  bytes[8] = 99;  // Version field (little-endian u32 after the magic).
  dump(path, bytes);
  try {
    (void)read_journal(path);
    FAIL() << "expected a version error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, FingerprintCoversResultAffectingFieldsOnly) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  auto request = small_request(app, library);
  const auto base_print = request_fingerprint(request);

  // Result-neutral knobs must not move the fingerprint: a resume may use a
  // different thread count, callback, sub-range, or pool.
  auto neutral = request;
  neutral.num_threads = 7;
  neutral.point_begin = 2;
  neutral.point_end = 5;
  neutral.on_point = [](const select::PointResult&) {};
  select::ExplorerContextPool pool;
  neutral.context_pool = &pool;
  EXPECT_EQ(request_fingerprint(neutral), base_print);

  auto different_axis = request;
  different_axis.link_bandwidths_mbps = {400.0, 800.0};
  EXPECT_NE(request_fingerprint(different_axis), base_print);

  auto different_base = request;
  different_base.base.max_area_mm2 = 55.0;
  EXPECT_NE(request_fingerprint(different_base), base_print);
}

TEST(Checkpoint, ResumeRejectsMismatchedFingerprintNamingBoth) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto request = small_request(app, library);
  const auto path = temp_journal("journal_mismatch.ckpt");

  auto other = request;
  other.max_areas_mm2 = {40.0, 80.0};
  JournalHeader header;
  header.fingerprint = request_fingerprint(other);
  JournalWriter::create(path, header).close();

  SweepOptions options;
  options.num_workers = 1;
  options.checkpoint_path = path;
  options.resume = true;
  try {
    (void)run_sweep(request, options);
    FAIL() << "expected a fingerprint mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    // The message names BOTH fingerprints, so the operator can tell which
    // request the journal belongs to.
    EXPECT_NE(what.find(fingerprint_hex(header.fingerprint)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(fingerprint_hex(request_fingerprint(request))),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("refusing to resume"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, SigkillMidSweepResumesBitIdentically) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto request = small_request(app, library);
  select::DesignSpaceExplorer explorer;
  const auto reference = explorer.explore(request);
  const std::size_t total = reference.results.size();
  const auto path = temp_journal("journal_sigkill.ckpt");

  // A coordinator in a child process, workers slowed so the parent can
  // SIGKILL it mid-grid — the whole process tree dies with frames and
  // journal appends in flight.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    SweepOptions options;
    options.num_workers = 2;
    options.num_shards = 3;
    options.checkpoint_path = path;
    options.hooks.sleep_ms_per_point = 150;
    try {
      (void)run_sweep(request, options);
    } catch (...) {
    }
    _exit(0);
  }
  // Wait until at least one whole record hit the journal (read_journal
  // tolerates a mid-append tail), then kill the coordinator cold.
  for (int i = 0; i < 600; ++i) {
    struct stat st {};
    if (::stat(path.c_str(), &st) == 0 && st.st_size > 0) {
      try {
        if (!read_journal(path).records.empty()) break;
      } catch (const std::exception&) {
        // Header still being written; keep waiting.
      }
    }
    ::usleep(20 * 1000);
  }
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));

  const auto contents = read_journal(path);
  ASSERT_GE(contents.records.size(), 1u);
  ASSERT_LT(contents.records.size(), total);

  SweepOptions options;
  options.num_workers = 2;
  options.num_shards = 3;
  options.checkpoint_path = path;
  options.resume = true;
  const auto resumed = run_sweep(request, options);
  EXPECT_FALSE(resumed.stats.interrupted);
  EXPECT_GE(resumed.stats.points_from_checkpoint, 1u);
  // Nothing already journaled is re-evaluated.
  EXPECT_EQ(resumed.stats.points_evaluated,
            total - resumed.stats.points_from_checkpoint);

  // The resumed report is bit-identical to the single-process explorer:
  // same best indices, same winners, same Pareto frontier, same scalars.
  ASSERT_EQ(resumed.report.results.size(), total);
  for (std::size_t p = 0; p < total; ++p) {
    const auto& a = reference.results[p];
    const auto& b = resumed.report.results[p];
    EXPECT_EQ(a.selection.best_index, b.selection.best_index) << p;
    for (std::size_t t = 0; t < a.selection.candidates.size(); ++t) {
      EXPECT_EQ(a.selection.candidates[t].result.eval.cost,
                b.selection.candidates[t].result.eval.cost)
          << p << "/" << t;
      EXPECT_EQ(a.selection.candidates[t].result.core_to_slot,
                b.selection.candidates[t].result.core_to_slot)
          << p << "/" << t;
    }
  }
  ASSERT_EQ(resumed.report.winners.size(), reference.winners.size());
  for (std::size_t w = 0; w < reference.winners.size(); ++w) {
    EXPECT_EQ(resumed.report.winners[w].point_index,
              reference.winners[w].point_index);
    EXPECT_EQ(resumed.report.winners[w].topology_index,
              reference.winners[w].topology_index);
  }
  ASSERT_EQ(resumed.report.pareto.size(), reference.pareto.size());
  for (std::size_t i = 0; i < reference.pareto.size(); ++i) {
    EXPECT_EQ(resumed.report.pareto[i].area_mm2,
              reference.pareto[i].area_mm2);
    EXPECT_EQ(resumed.report.pareto[i].power_mw,
              reference.pareto[i].power_mw);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sunmap::sweep
