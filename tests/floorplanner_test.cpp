#include <gtest/gtest.h>

#include <memory>

#include "fplan/floorplanner.h"
#include "topo/library.h"

namespace sunmap::fplan {
namespace {

/// Uniform shape inputs for a topology: soft 4 mm^2 cores in every slot and
/// soft 0.2 mm^2 switches.
struct Inputs {
  std::vector<std::optional<BlockShape>> cores;
  std::vector<BlockShape> switches;
};

Inputs uniform_inputs(const topo::Topology& topology, int used_slots = -1) {
  Inputs inputs;
  const int used = used_slots < 0 ? topology.num_slots() : used_slots;
  inputs.cores.resize(static_cast<std::size_t>(topology.num_slots()));
  for (int s = 0; s < used; ++s) {
    inputs.cores[static_cast<std::size_t>(s)] = BlockShape::soft_block(4.0);
  }
  inputs.switches.assign(static_cast<std::size_t>(topology.num_switches()),
                         BlockShape::soft_block(0.2));
  return inputs;
}

class FloorplannerTopologies : public ::testing::TestWithParam<int> {};

std::unique_ptr<topo::Topology> topology_for(int index) {
  // 8 cores keeps the octagon in the library, giving all 7 topologies.
  auto library = topo::standard_library(8, /*include_extensions=*/true);
  return std::move(library[static_cast<std::size_t>(index)]);
}

TEST_P(FloorplannerTopologies, LayoutIsLegal) {
  const auto topology = topology_for(GetParam());
  const auto inputs = uniform_inputs(*topology);
  Floorplanner planner;
  const auto fp = planner.place(topology->relative_placement(), inputs.cores,
                                inputs.switches);
  EXPECT_TRUE(fp.overlap_free(1e-6)) << topology->name();
  EXPECT_TRUE(fp.within_bounds(1e-6)) << topology->name();
  EXPECT_GT(fp.area_mm2(), 0.0);
  // Every switch and every used slot is placed.
  for (graph::NodeId sw = 0; sw < topology->num_switches(); ++sw) {
    EXPECT_TRUE(fp.find(PlacedBlock::Kind::kSwitch, sw).has_value());
  }
  for (int s = 0; s < topology->num_slots(); ++s) {
    EXPECT_TRUE(fp.find(PlacedBlock::Kind::kCore, s).has_value());
  }
}

TEST_P(FloorplannerTopologies, SimplexMatchesLongestPathExtents) {
  const auto topology = topology_for(GetParam());
  const auto inputs = uniform_inputs(*topology);

  Floorplanner::Options lp_options;
  lp_options.engine = Floorplanner::Engine::kSimplexLp;
  Floorplanner::Options band_options;
  band_options.engine = Floorplanner::Engine::kLongestPath;

  const auto lp_fp =
      Floorplanner(lp_options).place(topology->relative_placement(),
                                     inputs.cores, inputs.switches);
  const auto band_fp =
      Floorplanner(band_options).place(topology->relative_placement(),
                                       inputs.cores, inputs.switches);
  EXPECT_NEAR(lp_fp.width_mm() + lp_fp.height_mm(),
              band_fp.width_mm() + band_fp.height_mm(), 1e-5)
      << topology->name();
  EXPECT_TRUE(lp_fp.overlap_free(1e-6));
  EXPECT_TRUE(lp_fp.within_bounds(1e-6));
}

INSTANTIATE_TEST_SUITE_P(Library, FloorplannerTopologies,
                         ::testing::Range(0, 7));

TEST(Floorplanner, UnusedSlotsProduceNoBlocks) {
  const auto mesh = topo::make_mesh_for(12);
  const auto inputs = uniform_inputs(*mesh, /*used_slots=*/7);
  Floorplanner planner;
  const auto fp = planner.place(mesh->relative_placement(), inputs.cores,
                                inputs.switches);
  int cores = 0;
  for (const auto& b : fp.blocks()) {
    if (b.kind == PlacedBlock::Kind::kCore) ++cores;
  }
  EXPECT_EQ(cores, 7);
}

TEST(Floorplanner, HardBlockDimensionsPreserved) {
  const auto mesh = topo::make_mesh_for(4);
  auto inputs = uniform_inputs(*mesh);
  inputs.cores[0] = BlockShape::hard_block(1.5, 3.0);
  Floorplanner planner;
  const auto fp = planner.place(mesh->relative_placement(), inputs.cores,
                                inputs.switches);
  const auto block = fp.find(PlacedBlock::Kind::kCore, 0);
  ASSERT_TRUE(block.has_value());
  EXPECT_DOUBLE_EQ(block->w, 1.5);
  EXPECT_DOUBLE_EQ(block->h, 3.0);
}

TEST(Floorplanner, SoftBlockAspectStaysInRange) {
  const auto mesh = topo::make_mesh_for(9);
  auto inputs = uniform_inputs(*mesh);
  for (auto& core : inputs.cores) {
    core->min_aspect = 0.5;
    core->max_aspect = 2.0;
  }
  Floorplanner planner;
  const auto fp = planner.place(mesh->relative_placement(), inputs.cores,
                                inputs.switches);
  for (const auto& b : fp.blocks()) {
    if (b.kind != PlacedBlock::Kind::kCore) continue;
    const double aspect = b.w / b.h;
    EXPECT_GE(aspect, 0.5 - 1e-9);
    EXPECT_LE(aspect, 2.0 + 1e-9);
    EXPECT_NEAR(b.w * b.h, 4.0, 1e-9);
  }
}

TEST(Floorplanner, SizingImprovesOrMatchesSquareBlocks) {
  // Mixed block areas: aspect-ratio freedom should not hurt.
  const auto mesh = topo::make_mesh_for(6);
  auto inputs = uniform_inputs(*mesh);
  inputs.cores[1] = BlockShape::soft_block(9.0);
  inputs.cores[3] = BlockShape::soft_block(1.0);

  Floorplanner::Options no_sizing;
  no_sizing.sizing_passes = 0;
  Floorplanner::Options with_sizing;
  with_sizing.sizing_passes = 2;

  const auto rigid = Floorplanner(no_sizing).place(
      mesh->relative_placement(), inputs.cores, inputs.switches);
  const auto sized = Floorplanner(with_sizing).place(
      mesh->relative_placement(), inputs.cores, inputs.switches);
  EXPECT_LE(sized.area_mm2(), rigid.area_mm2() + 1e-9);
}

TEST(Floorplanner, SpacingIncreasesChip) {
  const auto mesh = topo::make_mesh_for(4);
  const auto inputs = uniform_inputs(*mesh);
  Floorplanner::Options tight;
  tight.spacing_mm = 0.0;
  Floorplanner::Options loose;
  loose.spacing_mm = 0.5;
  const auto tight_fp = Floorplanner(tight).place(
      mesh->relative_placement(), inputs.cores, inputs.switches);
  const auto loose_fp = Floorplanner(loose).place(
      mesh->relative_placement(), inputs.cores, inputs.switches);
  EXPECT_LT(tight_fp.area_mm2(), loose_fp.area_mm2());
}

}  // namespace
}  // namespace sunmap::fplan
