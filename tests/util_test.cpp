#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/prng.h"
#include "util/table.h"

namespace sunmap::util {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(Prng, ReseedRestartsSequence) {
  Prng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Prng, NextBelowInRange) {
  Prng prng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(prng.next_below(17), 17u);
  }
}

TEST(Prng, NextBelowCoversAllValues) {
  Prng prng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(prng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, NextIntInclusiveBounds) {
  Prng prng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = prng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, NextDoubleInUnitInterval) {
  Prng prng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = prng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, ChanceMatchesProbability) {
  Prng prng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (prng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Prng, WorksWithStdShuffle) {
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  Prng prng(17);
  std::shuffle(v.begin(), v.end(), prng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Table, RendersHeaderAndRows) {
  Table table({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_cols(), 2u);
}

TEST(Table, PadsShortRows) {
  Table table({"x", "y", "z"});
  table.add_row({"only"});
  EXPECT_NO_THROW(table.to_string());
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace sunmap::util
