// Admissibility tests for the objective-generic lower-bound pruning: the
// area/power bounds must never exceed the exactly evaluated values (over
// random mappings, all topologies shapes, and all routing functions), and a
// bound-pruned greedy-swap search must return the bit-identical mapping and
// cost of the prune-disabled reference search.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "apps/apps.h"
#include "mapping/eval_context.h"
#include "mapping/mapper.h"
#include "topo/library.h"
#include "util/prng.h"

namespace sunmap::mapping {
namespace {

std::vector<int> random_mapping(int num_cores, int num_slots,
                                util::Prng& prng) {
  std::vector<int> slots(static_cast<std::size_t>(num_slots));
  std::iota(slots.begin(), slots.end(), 0);
  for (std::size_t i = slots.size() - 1; i > 0; --i) {
    std::swap(slots[i], slots[prng.next_below(i + 1)]);
  }
  slots.resize(static_cast<std::size_t>(num_cores));
  return slots;
}

std::vector<std::unique_ptr<topo::Topology>> bound_topologies(int cores) {
  // The whole standard library: mesh/torus/hypercube exercise the grid
  // placement mode, clos and the butterfly the columns mode (and distinct
  // ingress/egress switches).
  return topo::standard_library(cores);
}

TEST(BoundAdmissibility, AreaBoundNeverExceedsEvaluatedArea) {
  const auto app = apps::mpeg4();
  util::Prng prng(7);
  for (const auto& topology : bound_topologies(app.num_cores())) {
    for (const route::RoutingKind kind :
         {route::RoutingKind::kDimensionOrdered,
          route::RoutingKind::kMinPath}) {
      MapperConfig config;
      config.routing = kind;
      config.objective = Objective::kMinArea;
      Mapper mapper(config);
      const auto ctx = mapper.make_context(app, *topology);
      EvalScratch scratch;
      for (int trial = 0; trial < 12; ++trial) {
        const auto mapping =
            random_mapping(app.num_cores(), topology->num_slots(), prng);
        const auto eval = ctx.evaluate(mapping, scratch);
        const double bound = ctx.area_lower_bound(mapping, scratch);
        SCOPED_TRACE(topology->name() + " trial " + std::to_string(trial));
        EXPECT_GT(bound, 0.0);
        EXPECT_LE(bound, eval.design_area_mm2 * (1.0 + 1e-12));
      }
    }
  }
}

TEST(BoundAdmissibility, PowerBoundNeverExceedsEvaluatedPower) {
  const auto app = apps::mpeg4();
  util::Prng prng(11);
  for (const auto& topology : bound_topologies(app.num_cores())) {
    for (const route::RoutingKind kind : route::kAllRoutingKinds) {
      MapperConfig config;
      config.routing = kind;
      config.objective = Objective::kMinPower;
      Mapper mapper(config);
      const auto ctx = mapper.make_context(app, *topology);
      EvalScratch scratch;
      for (int trial = 0; trial < 8; ++trial) {
        const auto mapping =
            random_mapping(app.num_cores(), topology->num_slots(), prng);
        const auto eval = ctx.evaluate(mapping, scratch);
        const double bound = ctx.power_lower_bound(mapping, scratch);
        SCOPED_TRACE(topology->name() + std::string(" / ") +
                     route::to_string(kind) + " trial " +
                     std::to_string(trial));
        // At the very least the exact static power is in the bound.
        EXPECT_GE(bound, eval.static_power_mw);
        EXPECT_LE(bound, eval.design_power_mw * (1.0 + 1e-12));
      }
    }
  }
}

/// The pruned and prune-disabled searches must walk to the identical
/// mapping at the bit-identical cost: pruning may only skip candidates that
/// provably cannot beat the incumbent.
void expect_pruned_search_identical(const CoreGraph& app,
                                    const topo::Topology& topology,
                                    MapperConfig config) {
  config.bound_pruning = true;
  const auto pruned = Mapper(config).map(app, topology);
  config.bound_pruning = false;
  const auto reference = Mapper(config).map(app, topology);

  EXPECT_EQ(pruned.core_to_slot, reference.core_to_slot);
  EXPECT_EQ(pruned.eval.cost, reference.eval.cost);
  EXPECT_EQ(pruned.eval.design_area_mm2, reference.eval.design_area_mm2);
  EXPECT_EQ(pruned.eval.design_power_mw, reference.eval.design_power_mw);
  EXPECT_EQ(pruned.eval.avg_switch_hops, reference.eval.avg_switch_hops);
  EXPECT_EQ(pruned.evaluated_mappings, reference.evaluated_mappings);
  EXPECT_EQ(reference.pruned_mappings, 0);
}

TEST(PrunedSearch, BitIdenticalOnRandomizedWorkloadsMinArea) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    apps::SyntheticSpec spec;
    spec.num_cores = 12;
    spec.edge_density = 0.2;
    spec.max_bandwidth_mbps = 300.0;
    spec.seed = seed;
    const auto app = apps::synthetic(spec);
    const auto mesh = topo::make_mesh_for(spec.num_cores);
    MapperConfig config;
    config.objective = Objective::kMinArea;
    config.link_bandwidth_mbps = 2000.0;
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_pruned_search_identical(app, *mesh, config);
  }
}

TEST(PrunedSearch, BitIdenticalOnRandomizedWorkloadsMinPower) {
  for (const std::uint64_t seed : {4u, 5u, 6u}) {
    apps::SyntheticSpec spec;
    spec.num_cores = 12;
    spec.edge_density = 0.2;
    spec.max_bandwidth_mbps = 300.0;
    spec.seed = seed;
    const auto app = apps::synthetic(spec);
    const auto mesh = topo::make_mesh_for(spec.num_cores);
    MapperConfig config;
    config.objective = Objective::kMinPower;
    config.link_bandwidth_mbps = 2000.0;
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_pruned_search_identical(app, *mesh, config);
  }
}

TEST(PrunedSearch, BitIdenticalAcrossObjectivesRoutingsAndTopologies) {
  const auto app = apps::vopd();
  for (const auto& topology : bound_topologies(app.num_cores())) {
    for (const auto objective :
         {Objective::kMinArea, Objective::kMinPower, Objective::kWeighted}) {
      MapperConfig config;
      config.objective = objective;
      config.link_bandwidth_mbps = 1000.0;
      SCOPED_TRACE(topology->name() + std::string(" / ") +
                   to_string(objective));
      expect_pruned_search_identical(app, *topology, config);
    }
  }
}

TEST(BoundAdmissibility, ExactGeometryPowerBoundOnFullyOccupiedUniformMesh) {
  // netproc16: one core shape class filling every slot means every mapping
  // shares one floorplan, so the power bound switches to exact placed
  // geometry (PR 3 follow-on). It must stay admissible for every routing
  // function and random mapping, and it must actually bite: the bound of
  // the greedy winner's neighbourhood must land within a few percent of the
  // evaluated power (the old envelope bound sat ~6% under).
  const auto app = apps::netproc16();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  util::Prng prng(17);
  for (const route::RoutingKind kind : route::kAllRoutingKinds) {
    MapperConfig config;
    config.routing = kind;
    config.objective = Objective::kMinPower;
    config.link_bandwidth_mbps = 1000.0;
    Mapper mapper(config);
    const auto ctx = mapper.make_context(app, *mesh);
    EvalScratch scratch;
    for (int trial = 0; trial < 8; ++trial) {
      const auto mapping =
          random_mapping(app.num_cores(), mesh->num_slots(), prng);
      const auto eval = ctx.evaluate(mapping, scratch);
      const double bound = ctx.power_lower_bound(mapping, scratch);
      SCOPED_TRACE(std::string(route::to_string(kind)) + " trial " +
                   std::to_string(trial));
      EXPECT_GE(bound, eval.static_power_mw);
      EXPECT_LE(bound, eval.design_power_mw * (1.0 + 1e-12));
      // Tightness: exact geometry leaves only route-adaptivity slack.
      EXPECT_GE(bound, 0.9 * eval.design_power_mw);
    }
  }
}

TEST(PrunedSearch, ExactGeometryBoundPrunesFullyOccupiedUniformMesh) {
  // The headline of the refinement: netproc16 min-power greedy search used
  // to bound-prune only ~25% of its candidates; exact-geometry wire floors
  // must clear 40% while staying bit-identical to the prune-free search.
  const auto app = apps::netproc16();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.objective = Objective::kMinPower;
  config.link_bandwidth_mbps = 1000.0;
  expect_pruned_search_identical(app, *mesh, config);
  const auto pruned = Mapper(config).map(app, *mesh);
  EXPECT_GT(pruned.pruned_mappings, (2 * pruned.evaluated_mappings) / 5);
}

TEST(PrunedSearch, OccupiedBandRefinementBitIdenticalOnPartialMeshes) {
  // The per-candidate occupied-row/column refinement path (heterogeneous
  // shapes, empty slots): pruned vs prune-free bit-identity on a 16-slot
  // mesh holding 12 VOPD cores.
  const auto app = apps::vopd();
  const auto mesh16 = topo::make_mesh_for(16);
  MapperConfig config;
  config.objective = Objective::kMinPower;
  expect_pruned_search_identical(app, *mesh16, config);
}

TEST(BoundAdmissibility, HoldsUnderSimplexLpFloorplanEngine) {
  // The LP engine places blocks at raw simplex-vertex coordinates, where
  // only the pairwise ordering constraints are guaranteed — the bounds
  // must fall back to their LP-safe form and stay admissible.
  const auto app = apps::vopd();
  util::Prng prng(13);
  for (const auto& topology : bound_topologies(app.num_cores())) {
    MapperConfig config;
    config.objective = Objective::kMinPower;
    config.floorplan.engine = fplan::Floorplanner::Engine::kSimplexLp;
    Mapper mapper(config);
    const auto ctx = mapper.make_context(app, *topology);
    EvalScratch scratch;
    for (int trial = 0; trial < 6; ++trial) {
      const auto mapping =
          random_mapping(app.num_cores(), topology->num_slots(), prng);
      const auto eval = ctx.evaluate(mapping, scratch);
      SCOPED_TRACE(topology->name() + " trial " + std::to_string(trial));
      EXPECT_LE(ctx.area_lower_bound(mapping, scratch),
                eval.design_area_mm2 * (1.0 + 1e-12));
      EXPECT_LE(ctx.power_lower_bound(mapping, scratch),
                eval.design_power_mw * (1.0 + 1e-12));
    }
  }
}

TEST(PrunedSearch, BitIdenticalUnderSimplexLpFloorplanEngine) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  for (const auto objective : {Objective::kMinArea, Objective::kMinPower}) {
    MapperConfig config;
    config.objective = objective;
    config.floorplan.engine = fplan::Floorplanner::Engine::kSimplexLp;
    SCOPED_TRACE(to_string(objective));
    expect_pruned_search_identical(app, *mesh, config);
  }
}

TEST(PrunedSearch, PrunesMostCandidatesOnFeasibleMinAreaRun) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.objective = Objective::kMinArea;
  const auto result = Mapper(config).map(app, *mesh);
  EXPECT_GT(result.pruned_mappings, result.evaluated_mappings / 2);
}

TEST(PrunedSearch, AreaCapInfeasibilityPrunesUnderAnyObjective) {
  // A provably cap-violating candidate can be pruned even under min-delay.
  // The cap sits above the incumbent's area but below what the envelope
  // proves for the worst candidates; results must still be identical.
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.objective = Objective::kMinDelay;
  const auto unconstrained = Mapper(config).map(app, *mesh);
  config.max_area_mm2 = unconstrained.eval.design_area_mm2 * 1.05;
  expect_pruned_search_identical(app, *mesh, config);
}

TEST(PrunedSearch, DisabledPruningStillSearchesFully) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.bound_pruning = false;
  const auto result = Mapper(config).map(app, *mesh);
  EXPECT_EQ(result.pruned_mappings, 0);
  EXPECT_GT(result.evaluated_mappings, 1);
  EXPECT_TRUE(result.eval.feasible());
}

}  // namespace
}  // namespace sunmap::mapping
