#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <tuple>

#include "route/routing.h"
#include "topo/library.h"

namespace sunmap::route {
namespace {

using topo::SlotId;

double fraction_sum(const RouteSet& routes) {
  double sum = 0.0;
  for (const auto& wp : routes.paths) sum += wp.fraction;
  return sum;
}

/// Return-value convenience over the out-param hot-path API.
RouteSet route(const RoutingEngine& engine, SlotId src, SlotId dst,
               double demand, const LoadMap& loads) {
  RouteSet out;
  engine.route(src, dst, demand, loads, out);
  return out;
}

RoutingEngine::Options split_options(int split_chunks,
                                     double capacity_hint_mbps) {
  RoutingEngine::Options options;
  options.split_chunks = split_chunks;
  options.capacity_hint_mbps = capacity_hint_mbps;
  return options;
}

TEST(RoutingKind, Labels) {
  EXPECT_STREQ(to_string(RoutingKind::kDimensionOrdered), "DO");
  EXPECT_STREQ(to_string(RoutingKind::kMinPath), "MP");
  EXPECT_STREQ(to_string(RoutingKind::kSplitMin), "SM");
  EXPECT_STREQ(to_string(RoutingKind::kSplitAll), "SA");
}

TEST(LoadMap, AccumulatesAndClears) {
  LoadMap loads(4);
  loads.add(2, 100.0);
  loads.add(2, 50.0);
  EXPECT_DOUBLE_EQ(loads.load(2), 150.0);
  EXPECT_DOUBLE_EQ(loads.max_load(), 150.0);
  loads.clear();
  EXPECT_DOUBLE_EQ(loads.max_load(), 0.0);
}

TEST(LoadMap, ClampsNearZeroNegativeResidue) {
  // Rip-up-and-reroute removes a commodity by adding its route with negative
  // demand; cancellation noise must not leave tiny negative link loads that
  // would perturb max_load() and feasibility checks.
  LoadMap loads(2);
  const double demand = 0.1;
  loads.add(0, demand);
  loads.add(0, demand);
  loads.add(0, demand);
  loads.add(0, -3 * demand);  // 3*0.1 != 0.1+0.1+0.1 in binary floating point
  EXPECT_EQ(loads.load(0), 0.0);
  EXPECT_EQ(loads.max_load(), 0.0);

  // A genuinely negative balance (a rip-up of routes that were never added)
  // is an accounting bug: it trips the debug assert, and in release builds
  // it stays visible as a negative load rather than being masked.
#ifdef NDEBUG
  loads.add(1, -1.0);
  EXPECT_LT(loads.load(1), 0.0);
#else
  EXPECT_DEATH(loads.add(1, -1.0), "negative residue beyond tolerance");
#endif
}

TEST(LoadMap, RipUpRoundTripIsExactOnIdleLinksBoundedElsewhere) {
  // On links idle before the add, an add_route/remove_route round trip
  // restores exact zero (0 + v = v and v - v = 0 are both exact in IEEE
  // arithmetic) — this is what lets the routing session trust a rebuilt
  // LoadMap bit-for-bit. Over a nonzero background the cancellation may
  // drift by an ulp per cycle, so there the guarantee is only a tight bound.
  const auto mesh = topo::make_mesh_for(16);
  RoutingEngine engine(*mesh, RoutingKind::kSplitMin);
  LoadMap idle(mesh->switch_graph().num_edges());
  const auto victim = route(engine, 3, 12, 217.7, idle);
  for (int cycle = 0; cycle < 5; ++cycle) {
    idle.add_route(victim, 217.7);
    idle.remove_route(victim, 217.7);
    for (std::size_t e = 0; e < idle.values().size(); ++e) {
      EXPECT_EQ(idle.values()[e], 0.0) << "edge " << e << " cycle " << cycle;
    }
  }

  LoadMap loads(mesh->switch_graph().num_edges());
  const auto background = route(engine, 0, 15, 333.3, loads);
  loads.add_route(background, 333.3);
  const std::vector<double> before = loads.values();
  for (int cycle = 0; cycle < 5; ++cycle) {
    loads.add_route(victim, 217.7);
    loads.remove_route(victim, 217.7);
    const std::vector<double>& after = loads.values();
    for (std::size_t e = 0; e < before.size(); ++e) {
      EXPECT_NEAR(before[e], after[e], 1e-9)
          << "edge " << e << " cycle " << cycle;
    }
  }
}

TEST(RoutingEngine, RejectsSelfRoute) {
  const auto mesh = topo::make_mesh_for(9);
  RoutingEngine engine(*mesh, RoutingKind::kMinPath);
  LoadMap loads(mesh->switch_graph().num_edges());
  RouteSet out;
  EXPECT_THROW(engine.route(1, 1, 100.0, loads, out), std::invalid_argument);
}

TEST(RoutingEngine, RejectsBadConfig) {
  const auto mesh = topo::make_mesh_for(9);
  EXPECT_THROW(RoutingEngine(*mesh, RoutingKind::kSplitAll,
                             split_options(0, 500.0)),
               std::invalid_argument);
  EXPECT_THROW(RoutingEngine(*mesh, RoutingKind::kSplitAll,
                             split_options(8, -1.0)),
               std::invalid_argument);
}

TEST(RoutingEngine, MinPathStaysInsideQuadrant) {
  const auto mesh = topo::make_mesh_for(16);
  RoutingEngine engine(*mesh, RoutingKind::kMinPath);
  LoadMap loads(mesh->switch_graph().num_edges());
  for (SlotId a : {0, 3, 12, 5}) {
    for (SlotId b : {15, 10, 2, 7}) {
      if (a == b) continue;
      const auto routes = route(engine, a, b, 10.0, loads);
      ASSERT_EQ(routes.paths.size(), 1u);
      const auto quadrant = mesh->quadrant_nodes(a, b);
      for (graph::NodeId u : routes.paths[0].path.nodes) {
        EXPECT_NE(std::find(quadrant.begin(), quadrant.end(), u),
                  quadrant.end());
      }
    }
  }
}

TEST(RoutingEngine, MinPathAvoidsLoadedLink) {
  const auto mesh = topo::make_mesh_for(9);  // 3x3
  RoutingEngine engine(*mesh, RoutingKind::kMinPath);
  LoadMap loads(mesh->switch_graph().num_edges());
  // Route 0 -> 4 twice: the second route must avoid the first's links
  // (both L-paths have equal hops; load breaks the tie).
  const auto first = route(engine, 0, 4, 100.0, loads);
  loads.add_route(first, 100.0);
  const auto second = route(engine, 0, 4, 100.0, loads);
  EXPECT_NE(first.paths[0].path.nodes, second.paths[0].path.nodes);
}

TEST(RoutingEngine, MinPathHopsMatchTopologyMinimum) {
  for (int cores : {9, 12, 16}) {
    const auto mesh = topo::make_mesh_for(cores);
    RoutingEngine engine(*mesh, RoutingKind::kMinPath);
    LoadMap loads(mesh->switch_graph().num_edges());
    for (SlotId a = 0; a < mesh->num_slots(); ++a) {
      for (SlotId b = 0; b < mesh->num_slots(); ++b) {
        if (a == b) continue;
        const auto routes = route(engine, a, b, 1.0, loads);
        EXPECT_DOUBLE_EQ(routes.weighted_switch_hops(),
                         mesh->min_switch_hops(a, b));
      }
    }
  }
}

TEST(RoutingEngine, SplitMinUsesAllClosMiddles) {
  const auto clos = std::make_unique<topo::Clos>(4, 2, 4);
  RoutingEngine engine(*clos, RoutingKind::kSplitMin);
  LoadMap loads(clos->switch_graph().num_edges());
  const auto routes = route(engine, 0, 7, 400.0, loads);
  // All four middle switches carry 1/4 of the flow each.
  EXPECT_EQ(routes.paths.size(), 4u);
  for (const auto& wp : routes.paths) {
    EXPECT_NEAR(wp.fraction, 0.25, 1e-9);
    EXPECT_EQ(wp.path.nodes.size(), 3u);
  }
}

TEST(RoutingEngine, SplitMinHalvesDiagonalMeshFlow) {
  const auto mesh = topo::make_mesh_for(9);
  RoutingEngine engine(*mesh, RoutingKind::kSplitMin);
  LoadMap loads(mesh->switch_graph().num_edges());
  // 0 -> 4 (one-step diagonal): two minimum paths, half the flow on each
  // first link.
  const auto routes = route(engine, 0, 4, 100.0, loads);
  loads.add_route(routes, 100.0);
  EXPECT_NEAR(loads.max_load(), 50.0, 1e-9);
}

TEST(RoutingEngine, SplitMinOnButterflyIsSinglePath) {
  const auto fly = topo::make_butterfly_for(12);
  RoutingEngine engine(*fly, RoutingKind::kSplitMin);
  LoadMap loads(fly->switch_graph().num_edges());
  // No path diversity (§6.1): splitting cannot help the butterfly.
  const auto routes = route(engine, 0, 9, 910.0, loads);
  ASSERT_EQ(routes.paths.size(), 1u);
  EXPECT_NEAR(routes.paths[0].fraction, 1.0, 1e-9);
}

TEST(RoutingEngine, SplitAllSpreadsBelowCapacity) {
  const auto mesh = topo::make_mesh_for(9);
  RoutingEngine engine(*mesh, RoutingKind::kSplitAll, split_options(16, 500.0));
  LoadMap loads(mesh->switch_graph().num_edges());
  // 900 MB/s from the centre: must spread over several links to stay under
  // the 500 MB/s capacity hint.
  const auto routes = route(engine, 4, 0, 900.0, loads);
  loads.add_route(routes, 900.0);
  EXPECT_GT(routes.paths.size(), 1u);
  EXPECT_LE(loads.max_load(), 500.0 + 1e-6);
}

TEST(RoutingEngine, SplitAllZeroLoadPrefersMinimalPath) {
  const auto mesh = topo::make_mesh_for(16);
  RoutingEngine engine(*mesh, RoutingKind::kSplitAll,
                       split_options(4, 500.0));
  LoadMap loads(mesh->switch_graph().num_edges());
  const auto routes = route(engine, 0, 1, 1.0, loads);
  // Tiny demand on an idle network: all chunks take the 2-switch path.
  EXPECT_DOUBLE_EQ(routes.weighted_switch_hops(), 2.0);
}

class AllKindsAllTopologies
    : public ::testing::TestWithParam<std::tuple<RoutingKind, int>> {};

TEST_P(AllKindsAllTopologies, FractionsSumToOneAndLoadsConserve) {
  const auto [kind, topo_index] = GetParam();
  auto library = topo::standard_library(12, /*include_extensions=*/true);
  const auto& topology = *library[static_cast<std::size_t>(topo_index)];
  RoutingEngine engine(topology, kind, split_options(8, 500.0));
  LoadMap loads(topology.switch_graph().num_edges());
  for (SlotId a = 0; a < std::min(6, topology.num_slots()); ++a) {
    for (SlotId b = 0; b < std::min(6, topology.num_slots()); ++b) {
      if (a == b) continue;
      const double demand = 100.0;
      const auto routes = route(engine, a, b, demand, loads);
      EXPECT_NEAR(fraction_sum(routes), 1.0, 1e-9);

      // Total added load equals demand x weighted link hops.
      LoadMap delta(topology.switch_graph().num_edges());
      delta.add_route(routes, demand);
      double total = 0.0;
      for (double v : delta.values()) total += v;
      EXPECT_NEAR(total, demand * routes.weighted_link_hops(), 1e-6);

      // Every path starts and ends at the right switches.
      for (const auto& wp : routes.paths) {
        EXPECT_EQ(wp.path.nodes.front(), topology.ingress_switch(a));
        EXPECT_EQ(wp.path.nodes.back(), topology.egress_switch(b));
      }
      loads.add_route(routes, demand);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllKindsAllTopologies,
    ::testing::Combine(::testing::Values(RoutingKind::kDimensionOrdered,
                                         RoutingKind::kMinPath,
                                         RoutingKind::kSplitMin,
                                         RoutingKind::kSplitAll),
                       ::testing::Range(0, 6)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_topo" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sunmap::route
