// Property tests that every topology in the library must satisfy, run over
// a sweep of sizes (TEST_P). These pin down the §4.2/§4.3 invariants:
// structural quadrant graphs must equal the generic minimum-path closure,
// dimension-ordered routes must be valid, and every slot pair routable.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "graph/paths.h"
#include "topo/library.h"

namespace sunmap::topo {
namespace {

struct Case {
  const char* kind;
  int cores;
};

std::unique_ptr<Topology> build(const Case& c) {
  const std::string kind = c.kind;
  if (kind == "mesh") return make_mesh_for(c.cores);
  if (kind == "torus") return make_torus_for(c.cores);
  if (kind == "hypercube") return make_hypercube_for(c.cores);
  if (kind == "clos") return make_clos_for(c.cores);
  if (kind == "butterfly") return make_butterfly_for(c.cores);
  if (kind == "octagon") return std::make_unique<Octagon>();
  if (kind == "star") return std::make_unique<Star>(c.cores);
  throw std::logic_error("unknown kind");
}

class TopologyProperty : public ::testing::TestWithParam<Case> {};

TEST_P(TopologyProperty, SlotsAttachToValidSwitches) {
  const auto topology = build(GetParam());
  EXPECT_GE(topology->num_slots(), GetParam().cores);
  for (SlotId s = 0; s < topology->num_slots(); ++s) {
    EXPECT_GE(topology->ingress_switch(s), 0);
    EXPECT_LT(topology->ingress_switch(s), topology->num_switches());
    EXPECT_GE(topology->egress_switch(s), 0);
    EXPECT_LT(topology->egress_switch(s), topology->num_switches());
    if (topology->is_direct()) {
      EXPECT_EQ(topology->ingress_switch(s), topology->egress_switch(s));
    }
  }
}

TEST_P(TopologyProperty, EverySlotPairRoutable) {
  const auto topology = build(GetParam());
  for (SlotId a = 0; a < topology->num_slots(); ++a) {
    for (SlotId b = 0; b < topology->num_slots(); ++b) {
      if (a == b) continue;
      EXPECT_GE(topology->min_switch_hops(a, b), 1);
    }
  }
}

TEST_P(TopologyProperty, QuadrantEqualsMinPathClosure) {
  const auto topology = build(GetParam());
  const auto& g = topology->switch_graph();
  for (SlotId a = 0; a < topology->num_slots(); ++a) {
    for (SlotId b = 0; b < topology->num_slots(); ++b) {
      if (a == b) continue;
      auto structural = topology->quadrant_nodes(a, b);
      auto closure = graph::min_path_nodes(g, topology->ingress_switch(a),
                                           topology->egress_switch(b));
      std::sort(structural.begin(), structural.end());
      std::sort(closure.begin(), closure.end());
      EXPECT_EQ(structural, closure)
          << topology->name() << " slots " << a << " -> " << b;
    }
  }
}

TEST_P(TopologyProperty, QuadrantContainsEndpoints) {
  const auto topology = build(GetParam());
  for (SlotId a = 0; a < topology->num_slots(); ++a) {
    for (SlotId b = 0; b < topology->num_slots(); ++b) {
      if (a == b) continue;
      const auto quadrant = topology->quadrant_nodes(a, b);
      EXPECT_NE(std::find(quadrant.begin(), quadrant.end(),
                          topology->ingress_switch(a)),
                quadrant.end());
      EXPECT_NE(std::find(quadrant.begin(), quadrant.end(),
                          topology->egress_switch(b)),
                quadrant.end());
    }
  }
}

TEST_P(TopologyProperty, DimensionOrderedRouteIsValidAndEndsRight) {
  const auto topology = build(GetParam());
  for (SlotId a = 0; a < topology->num_slots(); ++a) {
    for (SlotId b = 0; b < topology->num_slots(); ++b) {
      if (a == b) continue;
      const auto path = topology->dimension_ordered_path(a, b);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), topology->ingress_switch(a));
      EXPECT_EQ(path.back(), topology->egress_switch(b));
      EXPECT_NO_THROW(topology->make_path(path));
    }
  }
}

TEST_P(TopologyProperty, SwitchPortsArePositive) {
  const auto topology = build(GetParam());
  for (graph::NodeId sw = 0; sw < topology->num_switches(); ++sw) {
    EXPECT_GE(topology->switch_radix(sw), 1);
  }
}

TEST_P(TopologyProperty, PlacementReferencesEverySwitchAndSlotOnce) {
  const auto topology = build(GetParam());
  const auto placement = topology->relative_placement();
  std::vector<int> switch_seen(
      static_cast<std::size_t>(topology->num_switches()), 0);
  std::vector<int> slot_seen(static_cast<std::size_t>(topology->num_slots()),
                             0);
  for (const auto& item : placement.items) {
    if (item.kind == RelativePlacement::Item::Kind::kSwitch) {
      ++switch_seen.at(static_cast<std::size_t>(item.index));
    } else {
      ++slot_seen.at(static_cast<std::size_t>(item.index));
    }
  }
  for (int n : switch_seen) EXPECT_EQ(n, 1);
  for (int n : slot_seen) EXPECT_EQ(n, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Library, TopologyProperty,
    ::testing::Values(Case{"mesh", 6}, Case{"mesh", 12}, Case{"mesh", 16},
                      Case{"mesh", 24}, Case{"torus", 6}, Case{"torus", 12},
                      Case{"torus", 16}, Case{"torus", 25},
                      Case{"hypercube", 4}, Case{"hypercube", 8},
                      Case{"hypercube", 16}, Case{"clos", 6},
                      Case{"clos", 12}, Case{"clos", 16}, Case{"clos", 24},
                      Case{"butterfly", 6}, Case{"butterfly", 12},
                      Case{"butterfly", 16}, Case{"butterfly", 32},
                      Case{"octagon", 8}, Case{"star", 6}, Case{"star", 16}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.kind) + "_" +
             std::to_string(info.param.cores);
    });

}  // namespace
}  // namespace sunmap::topo
