#include <gtest/gtest.h>

#include "fplan/lp.h"

namespace sunmap::fplan {
namespace {

using Relation = LinearProgram::Relation;

TEST(Simplex, SolvesTextbookMaximisation) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  x=2, y=6, obj 36
  // (as a minimisation of -3x - 5y).
  LinearProgram lp(2);
  lp.set_objective(0, -3.0);
  lp.set_objective(1, -5.0);
  lp.add_constraint({{0, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{1, 2.0}}, Relation::kLe, 12.0);
  lp.add_constraint({{0, 3.0}, {1, 2.0}}, Relation::kLe, 18.0);
  const auto solution = solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[0], 2.0, 1e-6);
  EXPECT_NEAR(solution.values[1], 6.0, 1e-6);
  EXPECT_NEAR(solution.objective, -36.0, 1e-6);
}

TEST(Simplex, HandlesGreaterEqual) {
  // min x + y s.t. x + y >= 3, x >= 1 -> obj 3.
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kGe, 3.0);
  lp.add_constraint({{0, 1.0}}, Relation::kGe, 1.0);
  const auto solution = solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-6);
  EXPECT_GE(solution.values[0], 1.0 - 1e-6);
}

TEST(Simplex, HandlesEquality) {
  // min 2x + y s.t. x + y == 5, x <= 3 -> x=0? obj: minimise 2x + y with
  // x + y = 5 -> y = 5 - x, obj = x + 5, so x=0, obj 5.
  LinearProgram lp(2);
  lp.set_objective(0, 2.0);
  lp.set_objective(1, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kEq, 5.0);
  lp.add_constraint({{0, 1.0}}, Relation::kLe, 3.0);
  const auto solution = solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-6);
  EXPECT_NEAR(solution.values[0], 0.0, 1e-6);
  EXPECT_NEAR(solution.values[1], 5.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp(1);
  lp.set_objective(0, 1.0);
  lp.add_constraint({{0, 1.0}}, Relation::kLe, 1.0);
  lp.add_constraint({{0, 1.0}}, Relation::kGe, 2.0);
  EXPECT_EQ(solve(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x with only x >= 0 -> unbounded below.
  LinearProgram lp(1);
  lp.set_objective(0, -1.0);
  lp.add_constraint({{0, 1.0}}, Relation::kGe, 0.0);
  EXPECT_EQ(solve(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalised) {
  // x - y <= -2  (i.e. y >= x + 2); min y -> x=0, y=2.
  LinearProgram lp(2);
  lp.set_objective(1, 1.0);
  lp.add_constraint({{0, 1.0}, {1, -1.0}}, Relation::kLe, -2.0);
  const auto solution = solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0, 1e-6);
}

TEST(Simplex, DegenerateProgramTerminates) {
  // Multiple constraints active at the optimum (classic degeneracy).
  LinearProgram lp(2);
  lp.set_objective(0, -1.0);
  lp.set_objective(1, -1.0);
  lp.add_constraint({{0, 1.0}}, Relation::kLe, 1.0);
  lp.add_constraint({{1, 1.0}}, Relation::kLe, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLe, 2.0);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLe, 2.0);
  const auto solution = solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -2.0, 1e-6);
}

TEST(Simplex, ZeroObjectiveFindsFeasiblePoint) {
  LinearProgram lp(2);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kEq, 4.0);
  const auto solution = solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[0] + solution.values[1], 4.0, 1e-6);
}

TEST(Simplex, RedundantEqualityRows) {
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kEq, 3.0);
  lp.add_constraint({{0, 2.0}, {1, 2.0}}, Relation::kEq, 6.0);  // redundant
  const auto solution = solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-6);
}

TEST(LinearProgram, ValidatesInput) {
  EXPECT_THROW(LinearProgram(0), std::invalid_argument);
  LinearProgram lp(2);
  EXPECT_THROW(lp.add_constraint({{5, 1.0}}, Relation::kLe, 1.0),
               std::out_of_range);
}

TEST(Simplex, LargerChainProgram) {
  // Chain of ordering constraints mimicking floorplan x-positions:
  // x_{i+1} >= x_i + 1, minimise x_n -> x_i = i.
  constexpr int kN = 20;
  LinearProgram lp(kN);
  lp.set_objective(kN - 1, 1.0);
  for (int i = 0; i + 1 < kN; ++i) {
    lp.add_constraint({{i + 1, 1.0}, {i, -1.0}}, Relation::kGe, 1.0);
  }
  const auto solution = solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, kN - 1, 1e-6);
}

TEST(LpStatus, ToStringNames) {
  EXPECT_STREQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(LpStatus::kUnbounded), "unbounded");
}

}  // namespace
}  // namespace sunmap::fplan
