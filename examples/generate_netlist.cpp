// Phase 3 of the SUNMAP flow (the ×pipesCompiler substitute): map the VOPD
// decoder, generate the SystemC-style network description of the selected
// topology, write it to ./generated/, and print the floorplan the link
// lengths were extracted from.

#include <filesystem>
#include <iostream>

#include "apps/apps.h"
#include "core/sunmap.h"
#include "fplan/render.h"

int main() {
  using namespace sunmap;

  const auto app = apps::vopd();
  const std::string out_dir = "generated";
  std::filesystem::create_directories(out_dir);

  core::SunmapConfig config;
  config.output_directory = out_dir;
  // Use the LP floorplanner for the final floorplan, as in the paper.
  config.mapper.floorplan.engine = fplan::Floorplanner::Engine::kSimplexLp;
  core::Sunmap tool(config);
  const auto result = tool.run(app);

  if (result.best() == nullptr) {
    std::cout << "No feasible mapping.\n";
    return 1;
  }
  const auto& best = *result.best();
  std::cout << "Selected " << best.topology->name() << " for " << app.name()
            << "\n\n"
            << result.netlist->summary() << "\n";

  std::cout << "Floorplan (LP-based, " << best.result.eval.floorplan.area_mm2()
            << " mm2):\n";
  const auto& slot_to_core = best.result.slot_to_core;
  std::cout << fplan::render_ascii(
      best.result.eval.floorplan,
      [&](const fplan::PlacedBlock& block) {
        if (block.kind == fplan::PlacedBlock::Kind::kSwitch) {
          return "S" + std::to_string(block.index);
        }
        const int core = slot_to_core[static_cast<std::size_t>(block.index)];
        return core >= 0 ? app.core(core).name : std::string("-");
      });

  std::cout << "\nGenerated files:\n";
  for (const auto& file : result.written_files) {
    std::cout << "  " << file << " ("
              << std::filesystem::file_size(file) << " bytes)\n";
  }
  return 0;
}
