// Design-space exploration (paper §6.3): sweeps the MPEG4 decoder across
// routing functions and objectives in one batched DesignSpaceExplorer run —
// one evaluation context per topology, re-bound across every configuration
// — then prints the per-routing minimum link bandwidth on a mesh (Fig 9(a))
// and the area-power Pareto points of the mapping space (Fig 9(b)).

#include <iostream>

#include "apps/apps.h"
#include "core/sunmap.h"
#include "select/explorer.h"
#include "util/table.h"

int main() {
  using namespace sunmap;

  const auto app = apps::mpeg4();
  std::cout << "Application: " << app.name() << " (" << app.num_cores()
            << " cores, " << app.total_bandwidth_mbps() << " MB/s)\n\n";

  // --- One batched sweep: 3 objectives x 4 routing functions over the
  // --- standard topology library (Figs 7(b) and 9 come from slices of it).
  const auto library = topo::standard_library(app.num_cores());
  select::ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.base.link_bandwidth_mbps = 500.0;
  request.objectives = {mapping::Objective::kMinDelay,
                        mapping::Objective::kMinArea,
                        mapping::Objective::kMinPower};
  request.routings = {route::RoutingKind::kDimensionOrdered,
                      route::RoutingKind::kMinPath,
                      route::RoutingKind::kSplitMin,
                      route::RoutingKind::kSplitAll};
  select::DesignSpaceExplorer explorer;
  const auto report = explorer.explore(request);

  std::cout << "Design points (" << report.results.size()
            << " configurations x " << library.size() << " topologies):\n";
  util::Table matrix({"configuration", "best topology", "cost"});
  for (const auto& result : report.results) {
    const auto* best = result.selection.best();
    matrix.add_row({result.point.label(),
                    best != nullptr ? best->topology->name() : "infeasible",
                    best != nullptr ? util::Table::num(best->result.eval.cost)
                                    : "-"});
  }
  std::cout << matrix.to_string() << "\n";

  std::cout << "Per-objective winners across the whole grid:\n";
  util::Table winners({"objective", "topology", "cost"});
  for (const auto& best : report.winners) {
    const auto* candidate = report.winner(best.objective);
    winners.add_row({mapping::to_string(best.objective),
                     candidate != nullptr ? candidate->topology->name()
                                          : "infeasible",
                     candidate != nullptr
                         ? util::Table::num(candidate->result.eval.cost)
                         : "-"});
  }
  std::cout << winners.to_string() << "\n";

  // --- Fig 9(a): minimum required bandwidth per routing function, read off
  // --- the mesh rows of the sweep's min-delay points.
  std::cout << "Minimum link bandwidth on a mesh per routing function:\n";
  util::Table bw_table({"routing", "min BW (MB/s)", "feasible @500"});
  for (const auto& result : report.results) {
    if (result.point.config.objective != mapping::Objective::kMinDelay) {
      continue;
    }
    for (const auto& candidate : result.selection.candidates) {
      if (candidate.topology->kind() != topo::TopologyKind::kMesh) continue;
      const double load = candidate.result.eval.max_link_load_mbps;
      bw_table.add_row({route::to_string(result.point.config.routing),
                        util::Table::num(load, 1),
                        load <= 500.0 ? "yes" : "no"});
    }
  }
  std::cout << bw_table.to_string() << "\n";

  // --- The sweep's own area-power frontier: the non-dominated winners
  // --- among every feasible (design point, topology) cell of the grid.
  std::cout << "Area-power frontier over the sweep's feasible mappings:\n";
  util::Table sweep_pareto({"area (mm2)", "power (mW)"});
  for (const auto& point : report.pareto) {
    sweep_pareto.add_row({util::Table::num(point.area_mm2),
                          util::Table::num(point.power_mw, 1)});
  }
  std::cout << sweep_pareto.to_string() << "\n";

  // --- Fig 9(b): Pareto points of the mesh *mapping space* — every mapping
  // --- the search explored, not just the final winners.
  mapping::MapperConfig pareto_config;
  pareto_config.routing = route::RoutingKind::kSplitAll;
  pareto_config.link_bandwidth_mbps = 500.0;
  pareto_config.collect_explored = true;
  mapping::Mapper mapper(pareto_config);
  const auto mesh = topo::make_mesh_for(app.num_cores());
  const auto mapped = mapper.map(app, *mesh);
  const auto frontier = select::pareto_frontier(mapped.explored_area_power);
  std::cout << "Area-power Pareto frontier over "
            << mapped.evaluated_mappings << " explored mesh mappings:\n";
  util::Table pareto_table({"area (mm2)", "power (mW)"});
  for (const auto& point : frontier) {
    pareto_table.add_row({util::Table::num(point.area_mm2),
                          util::Table::num(point.power_mw, 1)});
  }
  std::cout << pareto_table.to_string();
  return 0;
}
