// Design-space exploration (paper §6.3): maps the MPEG4 decoder onto the
// topology library under each routing function, prints the minimum link
// bandwidth each routing function needs on a mesh (Fig 9(a)), and the
// area-power Pareto points of the mesh mapping space (Fig 9(b)).

#include <iostream>

#include "apps/apps.h"
#include "core/sunmap.h"
#include "select/selector.h"
#include "util/table.h"

int main() {
  using namespace sunmap;

  const auto app = apps::mpeg4();
  std::cout << "Application: " << app.name() << " (" << app.num_cores()
            << " cores, " << app.total_bandwidth_mbps() << " MB/s)\n\n";

  // --- Fig 7(b): the topology table under split-traffic routing. ---
  core::SunmapConfig config;
  config.mapper.routing = route::RoutingKind::kSplitAll;
  config.mapper.objective = mapping::Objective::kMinDelay;
  config.mapper.link_bandwidth_mbps = 500.0;
  core::Sunmap tool(config);
  const auto result = tool.run(app);
  std::cout << "MPEG4 with split-traffic routing (500 MB/s links):\n"
            << core::Sunmap::report_table(result.report) << "\n";

  // --- Fig 9(a): minimum required bandwidth per routing function. ---
  std::cout << "Minimum link bandwidth on a mesh per routing function:\n";
  util::Table bw_table({"routing", "min BW (MB/s)", "feasible @500"});
  const auto mesh = topo::make_mesh_for(app.num_cores());
  for (route::RoutingKind kind : route::kAllRoutingKinds) {
    mapping::MapperConfig mapper_config = config.mapper;
    mapper_config.routing = kind;
    // Minimise the peak link load rather than delay so the mapper reports
    // the smallest bandwidth this routing function can get away with.
    mapping::Mapper mapper(mapper_config);
    const auto mapped = mapper.map(app, *mesh);
    bw_table.add_row({route::to_string(kind),
                      util::Table::num(mapped.eval.max_link_load_mbps, 1),
                      mapped.eval.max_link_load_mbps <= 500.0 ? "yes" : "no"});
  }
  std::cout << bw_table.to_string() << "\n";

  // --- Fig 9(b): Pareto points of the mesh mapping space. ---
  mapping::MapperConfig pareto_config = config.mapper;
  pareto_config.collect_explored = true;
  mapping::Mapper mapper(pareto_config);
  const auto mapped = mapper.map(app, *mesh);
  const auto frontier = select::pareto_frontier(mapped.explored_area_power);
  std::cout << "Area-power Pareto frontier over "
            << mapped.evaluated_mappings << " evaluated mesh mappings:\n";
  util::Table pareto_table({"area (mm2)", "power (mW)"});
  for (const auto& point : frontier) {
    pareto_table.add_row({util::Table::num(point.area_mm2),
                          util::Table::num(point.power_mw, 1)});
  }
  std::cout << pareto_table.to_string();
  return 0;
}
