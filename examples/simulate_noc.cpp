// Cycle-accurate simulation of a mapped design (the paper's §6.2/§6.4
// SystemC studies): map the DSP filter onto the selected topology, then
// drive it with trace traffic at increasing intensity and with synthetic
// adversarial patterns, printing latency/throughput curves.

#include <iostream>

#include "apps/apps.h"
#include "core/sunmap.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace sunmap;

  const auto app = apps::dsp_filter();
  core::SunmapConfig config;
  config.mapper.link_bandwidth_mbps = 1000.0;  // the DSP has 600 MB/s flows
  core::Sunmap tool(config);
  const auto result = tool.run(app);
  if (result.best() == nullptr) {
    std::cout << "No feasible mapping.\n";
    return 1;
  }
  const auto& best = *result.best();
  const auto& topology = *best.topology;
  std::cout << "Simulating " << app.name() << " on " << topology.name()
            << "\n\n";

  const auto routes = sim::RouteTable::all_pairs(
      topology, route::RoutingKind::kDimensionOrdered);

  // Trace-driven: scale the application rates up until saturation.
  std::cout << "Trace-driven load sweep (scale 1.0 = application rates):\n";
  util::Table trace_table({"scale", "offered (flits/cy)", "avg lat (cy)",
                           "throughput", "saturated"});
  for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    std::vector<sim::TrafficFlow> flows;
    for (const auto& e : app.graph().edges()) {
      flows.push_back(sim::TrafficFlow{
          best.result.core_to_slot[static_cast<std::size_t>(e.src)],
          best.result.core_to_slot[static_cast<std::size_t>(e.dst)],
          e.weight});
    }
    sim::TraceTraffic traffic(flows, 4, 0.2 * scale);
    sim::SimConfig sim_config;
    sim_config.warmup_cycles = 1000;
    sim_config.measure_cycles = 6000;
    sim_config.drain_cycles = 15000;
    sim::Simulator simulator(topology, routes, sim_config);
    const auto stats = simulator.run(traffic);
    trace_table.add_row(
        {util::Table::num(scale, 1),
         util::Table::num(stats.offered_flits_per_cycle_per_slot, 3),
         util::Table::num(stats.avg_latency_cycles, 1),
         util::Table::num(stats.throughput_flits_per_cycle_per_slot, 3),
         stats.saturated ? "yes" : "no"});
  }
  std::cout << trace_table.to_string() << "\n";

  // Synthetic patterns at a fixed rate.
  std::cout << "Synthetic patterns at 0.15 flits/cycle/node:\n";
  util::Table pattern_table({"pattern", "avg lat (cy)", "max lat (cy)",
                             "saturated"});
  for (auto pattern : {sim::Pattern::kUniform, sim::Pattern::kTranspose,
                       sim::Pattern::kBitComplement, sim::Pattern::kTornado,
                       sim::Pattern::kHotspot}) {
    sim::SimConfig sim_config;
    sim_config.warmup_cycles = 1000;
    sim_config.measure_cycles = 6000;
    sim_config.drain_cycles = 15000;
    const auto stats =
        sim::simulate_pattern(topology, routes, pattern, 0.15, sim_config);
    pattern_table.add_row({sim::to_string(pattern),
                           util::Table::num(stats.avg_latency_cycles, 1),
                           util::Table::num(stats.max_latency_cycles, 0),
                           stats.saturated ? "yes" : "no"});
  }
  std::cout << pattern_table.to_string();
  return 0;
}
