// Extending the topology library (paper §1: "the approach presented here is
// general and other topologies (such as octagon network or star network)
// can be easily added to the topology library"): run SUNMAP for an 8-core
// application over the standard library plus the octagon and star
// extensions, and compare what wins under each design objective.

#include <iostream>

#include "apps/apps.h"
#include "core/sunmap.h"
#include "util/table.h"

int main() {
  using namespace sunmap;

  // An 8-core synthetic application with moderate traffic.
  apps::SyntheticSpec spec;
  spec.num_cores = 8;
  spec.edge_density = 0.25;
  spec.max_bandwidth_mbps = 350.0;
  spec.seed = 2024;
  const auto app = apps::synthetic(spec);
  std::cout << "Application: " << app.name() << " ("
            << app.total_bandwidth_mbps() << " MB/s over " << app.num_flows()
            << " flows)\n\n";

  util::Table summary({"objective", "selected topology", "cost"});
  for (auto objective :
       {mapping::Objective::kMinDelay, mapping::Objective::kMinArea,
        mapping::Objective::kMinPower}) {
    core::SunmapConfig config;
    config.mapper.objective = objective;
    config.mapper.routing = route::RoutingKind::kMinPath;
    config.include_extension_topologies = true;  // octagon + star join in
    core::Sunmap tool(config);
    const auto result = tool.run(app);

    std::cout << "objective " << mapping::to_string(objective) << ":\n"
              << core::Sunmap::report_table(result.report) << "\n";
    if (const auto* best = result.best()) {
      summary.add_row({mapping::to_string(objective),
                       best->topology->name(),
                       util::Table::num(best->result.eval.cost)});
    } else {
      summary.add_row({mapping::to_string(objective), "(none feasible)",
                       "-"});
    }
  }
  std::cout << "Summary:\n" << summary.to_string();
  return 0;
}
