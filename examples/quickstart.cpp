// Quickstart: run the full SUNMAP flow (map -> select -> generate) on the
// paper's VOPD benchmark and print the phase-2 comparison table.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "apps/apps.h"
#include "core/sunmap.h"

int main() {
  using namespace sunmap;

  // The Video Object Plane Decoder of Fig 3(a): 12 cores, ~3.5 GB/s.
  const auto app = apps::vopd();
  std::cout << "Application: " << app.name() << " (" << app.num_cores()
            << " cores, " << app.num_flows() << " flows, "
            << app.total_bandwidth_mbps() << " MB/s total)\n\n";

  // Configure the tool: minimum-path routing, minimise average
  // communication delay, 500 MB/s links (the paper's §6.1 setup).
  core::SunmapConfig config;
  config.mapper.routing = route::RoutingKind::kMinPath;
  config.mapper.objective = mapping::Objective::kMinDelay;
  config.mapper.link_bandwidth_mbps = 500.0;

  core::Sunmap tool(config);
  const auto result = tool.run(app);

  std::cout << core::Sunmap::report_table(result.report) << "\n";

  if (const auto* best = result.best()) {
    std::cout << "Selected topology: " << best->topology->name() << "\n\n";
    std::cout << result.netlist->summary() << "\n";
    std::cout << "Generated " << result.generated->top.size()
              << " bytes of top-level SystemC and "
              << result.generated->header.size() << " bytes of soft macros\n";
  } else {
    std::cout << "No feasible mapping found.\n";
  }
  return 0;
}
