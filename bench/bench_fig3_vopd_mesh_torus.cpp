// Experiment FIG3d — reproduces Fig 3(d): the motivating VOPD example
// mapped onto a mesh and a torus, comparing average hops, design area and
// design power, with the torus/mesh ratio row. Paper values: avg hops
// 2.25 / 2.03 (ratio 0.90), area 54.59 / 57.91 mm^2 (1.06), power
// 372.1 / 454.9 mW (1.22).

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "topo/library.h"
#include "util/table.h"

namespace {

using namespace sunmap;

struct Row {
  double hops, area, power;
};

Row map_onto(const topo::Topology& topology) {
  mapping::Mapper mapper(bench::video_config());
  const auto result = mapper.map(apps::vopd(), topology);
  return Row{result.eval.avg_switch_hops, result.eval.design_area_mm2,
             result.eval.design_power_mw};
}

void print_table() {
  const auto mesh = topo::make_mesh_for(12);
  const auto torus = topo::make_torus_for(12);
  const Row mesh_row = map_onto(*mesh);
  const Row torus_row = map_onto(*torus);

  bench::print_heading(
      "Fig 3(d): VOPD design parameters, mesh vs torus (paper: hops "
      "2.25/2.03, area 54.6/57.9 mm2, power 372/455 mW)");
  util::Table table({"metric", "mesh", "torus", "torus/mesh"});
  table.add_row({"avg hops", util::Table::num(mesh_row.hops),
                 util::Table::num(torus_row.hops),
                 util::Table::num(torus_row.hops / mesh_row.hops)});
  table.add_row({"design area (mm2)", util::Table::num(mesh_row.area),
                 util::Table::num(torus_row.area),
                 util::Table::num(torus_row.area / mesh_row.area)});
  table.add_row({"design power (mW)", util::Table::num(mesh_row.power, 1),
                 util::Table::num(torus_row.power, 1),
                 util::Table::num(torus_row.power / mesh_row.power)});
  std::printf("%s", table.to_string().c_str());
}

void BM_MapVopdOntoMesh(benchmark::State& state) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(12);
  mapping::Mapper mapper(bench::video_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(app, *mesh));
  }
}
BENCHMARK(BM_MapVopdOntoMesh)->Unit(benchmark::kMillisecond);

void BM_EvaluateVopdMeshMapping(benchmark::State& state) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(12);
  mapping::Mapper mapper(bench::video_config());
  const auto result = mapper.map(app, *mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapper.evaluate(app, *mesh, result.core_to_slot));
  }
}
BENCHMARK(BM_EvaluateVopdMeshMapping)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return sunmap::bench::run_benchmarks(argc, argv);
}
