// Ablation ABL-SEARCH — design-choice ablations DESIGN.md calls out for the
// mapping engine:
//  * greedy initial mapping + pairwise swaps (the paper's Fig 5 algorithm)
//    vs simulated annealing, on cost and evaluations spent;
//  * rip-up-and-reroute refinement on vs off for split-across-all-paths
//    routing (off reproduces Fig 5 literally; on is what makes the MPEG4
//    mesh mapping feasible at 500 MB/s);
//  * swap passes sweep (0 = greedy initial only).

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "topo/library.h"
#include "util/table.h"

namespace {

using namespace sunmap;

void print_search_comparison() {
  bench::print_heading(
      "Search strategy ablation (VOPD, MPEG4, MWD on mesh; min-delay)");
  util::Table table({"app", "strategy", "cost", "feasible", "evaluations"});
  struct Workload {
    const char* name;
    mapping::CoreGraph app;
    route::RoutingKind routing;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"vopd", apps::vopd(), route::RoutingKind::kMinPath});
  workloads.push_back({"mpeg4", apps::mpeg4(), route::RoutingKind::kSplitAll});
  workloads.push_back({"mwd", apps::mwd(), route::RoutingKind::kMinPath});

  for (const auto& workload : workloads) {
    const auto mesh = topo::make_mesh_for(workload.app.num_cores());
    for (auto strategy : {mapping::SearchKind::kGreedySwaps,
                          mapping::SearchKind::kAnnealing}) {
      auto config = bench::video_config();
      config.routing = workload.routing;
      config.search = strategy;
      config.annealing_iterations = 800;
      mapping::Mapper mapper(config);
      const auto result = mapper.map(workload.app, *mesh);
      table.add_row({workload.name, mapping::to_string(strategy),
                     util::Table::num(result.eval.cost),
                     result.eval.feasible() ? "yes" : "no",
                     std::to_string(result.evaluated_mappings)});
    }
  }
  std::printf("%s", table.to_string().c_str());
}

void print_reroute_ablation() {
  bench::print_heading(
      "Rip-up-and-reroute ablation (MPEG4 on mesh, split-all routing; 0 "
      "passes = the literal Fig 5 sequential pass)");
  util::Table table({"reroute passes", "min BW (MB/s)", "feasible @500"});
  const auto app = apps::mpeg4();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  for (int passes : {0, 1, 2, 4}) {
    auto config = bench::video_config();
    config.routing = route::RoutingKind::kSplitAll;
    config.reroute_passes = passes;
    mapping::Mapper mapper(config);
    const auto result = mapper.map(app, *mesh);
    table.add_row({std::to_string(passes),
                   util::Table::num(result.eval.max_link_load_mbps, 1),
                   result.eval.max_link_load_mbps <= 500.0 ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());
}

void print_swap_pass_sweep() {
  bench::print_heading("Swap-pass sweep (VOPD on mesh)");
  util::Table table({"swap passes", "avg hops", "evaluations"});
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  for (int passes : {0, 1, 2, 4}) {
    auto config = bench::video_config();
    config.swap_passes = passes;
    mapping::Mapper mapper(config);
    const auto result = mapper.map(app, *mesh);
    table.add_row({std::to_string(passes),
                   util::Table::num(result.eval.avg_switch_hops),
                   std::to_string(result.evaluated_mappings)});
  }
  std::printf("%s", table.to_string().c_str());
}

void BM_AnnealingVopd(benchmark::State& state) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  auto config = bench::video_config();
  config.search = mapping::SearchKind::kAnnealing;
  config.annealing_iterations = static_cast<int>(state.range(0));
  mapping::Mapper mapper(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(app, *mesh));
  }
  state.SetLabel(std::to_string(state.range(0)) + " iterations");
}
BENCHMARK(BM_AnnealingVopd)
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_search_comparison();
  print_reroute_ablation();
  print_swap_pass_sweep();
  return sunmap::bench::run_benchmarks(argc, argv);
}
