// Experiment FIG7b — reproduces Fig 7(b): MPEG4 mapped onto the library.
// Under any single-path routing every topology violates the 500 MB/s
// bandwidth constraint (the SDRAM flows reach 910 MB/s), so split-traffic
// routing is applied; the butterfly has no path diversity and remains
// infeasible ("No Feasible Mapping" in the paper's table), the torus gets
// the lowest hop count, and the mesh wins area and power. Paper values:
// mesh 2.49 hops / 62.51 mm^2 / 445.4 mW; torus 2.47 / 66.03 / 504.1;
// hypercube 2.48 / 67.05 / 546.7; clos 3.0 / 64.38 / 541.4.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "select/selector.h"
#include "topo/library.h"
#include "util/table.h"

namespace {

using namespace sunmap;

mapping::MapperConfig split_config() {
  auto config = sunmap::bench::video_config();
  config.routing = route::RoutingKind::kSplitAll;
  return config;
}

void print_table() {
  const auto app = apps::mpeg4();
  const auto library = topo::standard_library(app.num_cores());

  bench::print_heading(
      "Fig 7(b): MPEG4 mappings with split-traffic routing at 500 MB/s "
      "(paper: butterfly has no feasible mapping; mesh wins area+power)");
  select::TopologySelector selector(split_config());
  const auto report = selector.select(app, library);
  util::Table table({"topology", "avg hops", "area (mm2)", "power (mW)",
                     "min BW (MB/s)", "feasible"});
  for (const auto& candidate : report.candidates) {
    const auto& eval = candidate.result.eval;
    table.add_row({candidate.topology->name(),
                   eval.feasible() ? util::Table::num(eval.avg_switch_hops)
                                   : "-",
                   eval.feasible() ? util::Table::num(eval.design_area_mm2)
                                   : "-",
                   eval.feasible() ? util::Table::num(eval.design_power_mw, 1)
                                   : "-",
                   util::Table::num(eval.max_link_load_mbps, 1),
                   eval.feasible() ? "yes" : "NO FEASIBLE MAPPING"});
  }
  std::printf("%s", table.to_string().c_str());

  // The paper's conclusion uses area/power, not delay: verify the mesh wins
  // when the objective is area.
  auto area_config = split_config();
  area_config.objective = mapping::Objective::kMinArea;
  select::TopologySelector area_selector(area_config);
  const auto area_report = area_selector.select(app, library);
  if (area_report.best() != nullptr) {
    std::printf(
        "min-area selection: %s (paper: \"a mesh topology is more suitable "
        "for the MPEG4\")\n",
        area_report.best()->topology->name().c_str());
  }
}

void BM_MapMpeg4SplitAll(benchmark::State& state) {
  const auto app = apps::mpeg4();
  const auto library = topo::standard_library(app.num_cores());
  const auto& topology =
      *library[static_cast<std::size_t>(state.range(0))];
  mapping::Mapper mapper(split_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(app, topology));
  }
  state.SetLabel(topology.name());
}
BENCHMARK(BM_MapMpeg4SplitAll)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return sunmap::bench::run_benchmarks(argc, argv);
}
