// Experiment FAULT-RT — the robustness probe behind the fault-aware
// evaluation engine. Two CI-gated invariants ride in its JSON:
//
//  * fault_free_bit_identical — an empty fault set must leave the mapping
//    search bit-identical to the committed mapping probe: same cost, same
//    evaluated/pruned counts on the 64-core synthetic mesh. Fault awareness
//    costs nothing when it is off.
//  * fault_incremental_2x — with exhaustive N-1 link faults folded into the
//    worst-case-degraded objective, the per-scenario re-evaluation through
//    the BFS tables prebuilt at bind time must be >= 2x faster than
//    re-running the masked searches from scratch per evaluation, on an
//    SA-shaped neighbor-swap walk over VOPD and MPEG-4. The gated ratio is
//    net of the fault-free base evaluation (measured with an empty fault
//    set and subtracted from both sides), because the base routing/power
//    arithmetic is byte-for-byte shared and would only dilute the signal;
//    the end-to-end walk speedup is recorded informationally. Both paths
//    must return bit-identical evaluations — the reference is the same
//    arithmetic, so any divergence is a bug and the binary exits nonzero.
//
// A scenario-count scaling table (1..16 random scenarios) is also recorded
// for the delta summary. Run with `--json[=path]` (default BENCH_fault.json)
// to dump the probe for scripts/check_bench_regression.py.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "fault/fault.h"
#include "mapping/eval_context.h"
#include "topo/library.h"
#include "util/prng.h"
#include "util/table.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

namespace {

using namespace sunmap;

// The committed contract of the mapping probe (bench_mapping_scaling's
// 64-core greedy search): an empty fault set must reproduce it exactly.
constexpr double kFaultFreeCost = 4.9445597092556772;
constexpr int kFaultFreeEvaluated = 4033;
constexpr int kFaultFreePruned = 3981;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct FaultFreeProbe {
  double wall_ms = 0.0;
  double cost = 0.0;
  int evaluated = 0;
  int pruned = 0;
  bool bit_identical = false;
};

FaultFreeProbe run_fault_free_probe() {
  apps::SyntheticSpec spec;
  spec.num_cores = 64;
  spec.edge_density = 0.12;
  spec.max_bandwidth_mbps = 400.0;
  spec.seed = 42;
  const auto app = apps::synthetic(spec);
  const auto mesh = topo::make_mesh_for(64);
  auto config = bench::video_config();
  config.link_bandwidth_mbps = 4000.0;
  // The whole fault stack is configured but empty: this is the "off" path
  // every fault-unaware search takes.
  config.faults = fault::FaultSet{};
  mapping::Mapper mapper(config);

  FaultFreeProbe probe;
  const double t0 = now_ms();
  const auto result = mapper.map(app, *mesh);
  probe.wall_ms = now_ms() - t0;
  probe.cost = result.eval.cost;
  probe.evaluated = result.evaluated_mappings;
  probe.pruned = result.pruned_mappings;
  probe.bit_identical = probe.cost == kFaultFreeCost &&
                        probe.evaluated == kFaultFreeEvaluated &&
                        probe.pruned == kFaultFreePruned &&
                        result.eval.fault_outcomes.empty();

  bench::print_heading(
      "Fault-free bit-identity: empty fault set vs the committed mapping "
      "probe (64-core synthetic mesh, greedy swaps)");
  util::Table table({"wall ms", "cost", "evaluated", "pruned", "identical"});
  table.add_row({util::Table::num(probe.wall_ms, 1),
                 util::Table::num(probe.cost, 10),
                 std::to_string(probe.evaluated), std::to_string(probe.pruned),
                 probe.bit_identical ? "yes" : "NO"});
  std::printf("%s", table.to_string().c_str());
  return probe;
}

struct WalkResult {
  double wall_ms = 0.0;
  std::vector<double> costs;
};

/// SA-shaped probe: a deterministic random walk of neighbor swaps evaluated
/// through one EvalContext with materialize=false — the exact shape of the
/// annealing inner loop, isolated from acceptance logic so the measurement
/// is pure re-evaluation cost.
WalkResult evaluation_walk(const mapping::CoreGraph& app,
                           const topo::Topology& topology,
                           const mapping::MapperConfig& config, int iters) {
  const mapping::Mapper mapper(config);
  const auto ctx = mapper.make_context(app, topology);
  mapping::EvalScratch scratch;
  std::vector<int> mapping;
  for (int core = 0; core < app.num_cores(); ++core) mapping.push_back(core);

  util::Prng prng(7);
  WalkResult result;
  result.costs.reserve(static_cast<std::size_t>(iters));
  const double t0 = now_ms();
  for (int i = 0; i < iters; ++i) {
    const auto a = static_cast<std::size_t>(
        prng.next_below(static_cast<std::uint64_t>(app.num_cores())));
    const auto b = static_cast<std::size_t>(
        prng.next_below(static_cast<std::uint64_t>(app.num_cores())));
    std::swap(mapping[a], mapping[b]);
    const auto eval = ctx.evaluate(mapping, scratch, /*materialize=*/false);
    result.costs.push_back(eval.cost);
  }
  result.wall_ms = now_ms() - t0;
  return result;
}

/// Min-of-three walks: the walk is deterministic, so the cost sequence is
/// identical across repetitions and the minimum wall time is the least
/// noise-contaminated measurement — keeping the CI-gated speedup ratio
/// stable on loaded runners.
WalkResult best_of_walks(const mapping::CoreGraph& app,
                         const topo::Topology& topology,
                         const mapping::MapperConfig& config, int iters) {
  WalkResult best = evaluation_walk(app, topology, config, iters);
  for (int rep = 1; rep < 3; ++rep) {
    auto next = evaluation_walk(app, topology, config, iters);
    if (next.wall_ms < best.wall_ms) best.wall_ms = next.wall_ms;
  }
  return best;
}

struct IncrementalRun {
  std::string name;
  double base_ms = 0.0;         ///< Fault-free walk: shared arithmetic.
  double incremental_ms = 0.0;
  double reference_ms = 0.0;
  double walk_speedup = 0.0;    ///< End-to-end, informational.
  double fault_speedup = 0.0;   ///< Net of base_ms — the gated ratio.
  bool bit_identical = false;
  std::size_t scenarios = 0;
};

IncrementalRun run_incremental_probe(const std::string& name,
                                     const mapping::CoreGraph& app,
                                     int iters) {
  const auto mesh = topo::make_mesh_for(app.num_cores());
  auto config = bench::video_config();

  // The fault-free walk isolates the arithmetic both fault paths share
  // (base routing, area/power, bounds); subtracting it leaves the cost of
  // the per-scenario degraded re-evaluation itself.
  const auto base = best_of_walks(app, *mesh, config, iters);

  config.faults.spec.kind = fault::FaultSpec::Kind::kEveryLink;
  config.faults.aggregation = fault::Aggregation::kWorstCase;
  config.incremental_fault_eval = true;
  const auto incremental = best_of_walks(app, *mesh, config, iters);
  config.incremental_fault_eval = false;
  const auto reference = best_of_walks(app, *mesh, config, iters);

  IncrementalRun run;
  run.name = name;
  run.base_ms = base.wall_ms;
  run.incremental_ms = incremental.wall_ms;
  run.reference_ms = reference.wall_ms;
  run.walk_speedup = reference.wall_ms / incremental.wall_ms;
  const double net_incremental =
      std::max(incremental.wall_ms - base.wall_ms, 1e-6);
  const double net_reference =
      std::max(reference.wall_ms - base.wall_ms, 1e-6);
  run.fault_speedup = net_reference / net_incremental;
  run.bit_identical = incremental.costs == reference.costs;
  run.scenarios = fault::physical_links(*mesh).size();
  return run;
}

struct ScalingPoint {
  int scenarios = 0;
  double incremental_ms = 0.0;
  double reference_ms = 0.0;
  double speedup = 0.0;
};

ScalingPoint run_scaling_point(const mapping::CoreGraph& app, int scenarios,
                               int iters) {
  const auto mesh = topo::make_mesh_for(app.num_cores());
  auto config = bench::video_config();
  config.faults.spec.kind = fault::FaultSpec::Kind::kRandom;
  config.faults.spec.num_scenarios = scenarios;
  config.faults.spec.faults_per_scenario = 1;
  config.faults.spec.seed = 5;

  ScalingPoint point;
  point.scenarios = scenarios;
  config.incremental_fault_eval = true;
  point.incremental_ms = best_of_walks(app, *mesh, config, iters).wall_ms;
  config.incremental_fault_eval = false;
  point.reference_ms = best_of_walks(app, *mesh, config, iters).wall_ms;
  point.speedup = point.reference_ms / point.incremental_ms;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_fault.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  const double t0 = now_ms();
  const auto fault_free = run_fault_free_probe();

  constexpr int kWalkIters = 400;
  std::vector<IncrementalRun> runs;
  runs.push_back(run_incremental_probe("vopd_n1_sa", apps::vopd(),
                                       kWalkIters));
  runs.push_back(run_incremental_probe("mpeg4_n1_sa", apps::mpeg4(),
                                       kWalkIters));

  bench::print_heading(
      "Incremental fault re-evaluation: prebuilt per-scenario BFS tables vs "
      "from-scratch masked searches (N-1 link faults, worst-case objective, "
      "SA-shaped walk)");
  util::Table table({"run", "scenarios", "base ms", "incremental ms",
                     "reference ms", "walk speedup", "fault speedup",
                     "bit-identical"});
  bool all_identical = fault_free.bit_identical;
  bool incremental_2x = true;
  double min_speedup = 0.0;
  for (const auto& run : runs) {
    table.add_row({run.name, std::to_string(run.scenarios),
                   util::Table::num(run.base_ms, 1),
                   util::Table::num(run.incremental_ms, 1),
                   util::Table::num(run.reference_ms, 1),
                   util::Table::num(run.walk_speedup, 2),
                   util::Table::num(run.fault_speedup, 2),
                   run.bit_identical ? "yes" : "NO"});
    all_identical = all_identical && run.bit_identical;
    incremental_2x = incremental_2x && run.fault_speedup >= 2.0;
    min_speedup = min_speedup == 0.0
                      ? run.fault_speedup
                      : std::min(min_speedup, run.fault_speedup);
  }
  std::printf("%s", table.to_string().c_str());

  std::vector<ScalingPoint> scaling;
  const auto vopd = apps::vopd();
  for (const int scenarios : {1, 4, 8, 16}) {
    scaling.push_back(run_scaling_point(vopd, scenarios, 200));
  }
  bench::print_heading(
      "Per-scenario-count scaling (VOPD, random single-link scenarios)");
  util::Table scale_table(
      {"scenarios", "incremental ms", "reference ms", "speedup"});
  for (const auto& point : scaling) {
    scale_table.add_row({std::to_string(point.scenarios),
                         util::Table::num(point.incremental_ms, 1),
                         util::Table::num(point.reference_ms, 1),
                         util::Table::num(point.speedup, 2)});
  }
  std::printf("%s", scale_table.to_string().c_str());
  const double total_ms = now_ms() - t0;

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"fault_tolerance\",\n"
                 "  \"wall_ms\": %.3f,\n"
                 "  \"cost\": %.17g,\n"
                 "  \"evaluated_mappings\": %d,\n"
                 "  \"pruned_mappings\": %d,\n"
                 "  \"fault_free_bit_identical\": %s,\n"
                 "  \"fault_incremental_2x\": %s,\n"
                 "  \"fault_incremental_speedup\": %.3f,\n",
                 total_ms, fault_free.cost, fault_free.evaluated,
                 fault_free.pruned,
                 fault_free.bit_identical ? "true" : "false",
                 incremental_2x ? "true" : "false", min_speedup);
    std::fprintf(out, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& run = runs[i];
      std::fprintf(out,
                   "    {\"run\": \"%s\", \"scenarios\": %zu, "
                   "\"base_ms\": %.3f, \"wall_ms\": %.3f, "
                   "\"reference_ms\": %.3f, \"walk_speedup\": %.3f, "
                   "\"fault_speedup\": %.3f, \"bit_identical\": %s}%s\n",
                   run.name.c_str(), run.scenarios, run.base_ms,
                   run.incremental_ms, run.reference_ms, run.walk_speedup,
                   run.fault_speedup, run.bit_identical ? "true" : "false",
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"scenario_scaling\": [\n");
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      const auto& point = scaling[i];
      std::fprintf(out,
                   "    {\"scenarios\": %d, \"incremental_ms\": %.3f, "
                   "\"reference_ms\": %.3f, \"speedup\": %.3f}%s\n",
                   point.scenarios, point.incremental_ms, point.reference_ms,
                   point.speedup, i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"sub_benchmarks\": {\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(out, "    \"%s\": %.3f%s\n", runs[i].name.c_str(),
                   runs[i].incremental_ms, i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: fault evaluation diverged from its reference\n");
    return 1;
  }
  return 0;
}
