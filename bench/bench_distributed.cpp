// Experiment DIST — the cross-PR probe for the distributed sweep service
// (sweep/coordinator.h). One grid over the VOPD decoder and the full
// standard library — 3 objectives x 4 routing functions x 2 link
// bandwidths, the Fig 6/7 sweep crossed with the §6.3 bandwidth axis —
// run three ways:
//
//  * single  — one in-process DesignSpaceExplorer::explore call;
//  * sharded — run_sweep at shard counts {1, 2, 3, 7}, 2 worker
//              processes, every merged report compared bit-for-bit
//              against the single-process reference (mappings, scalars,
//              winners, Pareto frontier);
//  * resumed — a checkpoint journal cut to its first half, resumed, and
//              compared against the same reference, with the evaluation
//              counter proving the journaled half was never re-run.
//
// The probe fails (exit 1) when any merged or resumed report diverges.
// Worker scaling is recorded per worker count; the >= 1.7x two-worker bar
// is only enforced when the machine actually has 2+ hardware threads —
// on a single-core runner the fork overhead makes the ratio meaningless,
// so there it is informational. `--json[=path]` dumps
// BENCH_distributed.json so CI gates the invariants and tracks the
// scaling trajectory across PRs.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "select/explorer.h"
#include "sweep/checkpoint.h"
#include "sweep/coordinator.h"
#include "topo/library.h"
#include "util/table.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace sunmap;

constexpr mapping::Objective kObjectives[] = {mapping::Objective::kMinDelay,
                                              mapping::Objective::kMinArea,
                                              mapping::Objective::kMinPower};
constexpr int kShardCounts[] = {1, 2, 3, 7};
constexpr int kWorkerCounts[] = {1, 2};

select::ExplorationRequest grid_request(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library) {
  select::ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.base = sunmap::bench::video_config();
  request.objectives.assign(std::begin(kObjectives), std::end(kObjectives));
  request.routings.assign(std::begin(route::kAllRoutingKinds),
                          std::end(route::kAllRoutingKinds));
  request.link_bandwidths_mbps = {500.0, 1000.0};
  return request;
}

/// Bit-for-bit comparison of a merged sweep report against the
/// single-process reference: scalars and mappings per cell, best indices,
/// winners, Pareto frontier. Exact double equality throughout.
bool identical(const select::ExplorationReport& reference,
               const select::ExplorationReport& merged) {
  if (reference.results.size() != merged.results.size()) return false;
  for (std::size_t p = 0; p < reference.results.size(); ++p) {
    const auto& a = reference.results[p].selection;
    const auto& b = merged.results[p].selection;
    if (a.best_index != b.best_index) return false;
    if (a.candidates.size() != b.candidates.size()) return false;
    for (std::size_t t = 0; t < a.candidates.size(); ++t) {
      const auto& ra = a.candidates[t].result;
      const auto& rb = b.candidates[t].result;
      if (ra.core_to_slot != rb.core_to_slot) return false;
      if (ra.evaluated_mappings != rb.evaluated_mappings) return false;
      const auto& ea = ra.eval;
      const auto& eb = rb.eval;
      if (ea.feasible() != eb.feasible() || ea.cost != eb.cost ||
          ea.avg_switch_hops != eb.avg_switch_hops ||
          ea.avg_path_latency_ns != eb.avg_path_latency_ns ||
          ea.design_area_mm2 != eb.design_area_mm2 ||
          ea.design_power_mw != eb.design_power_mw ||
          ea.max_link_load_mbps != eb.max_link_load_mbps) {
        return false;
      }
    }
  }
  if (reference.winners.size() != merged.winners.size()) return false;
  for (std::size_t w = 0; w < reference.winners.size(); ++w) {
    if (reference.winners[w].point_index != merged.winners[w].point_index ||
        reference.winners[w].topology_index !=
            merged.winners[w].topology_index) {
      return false;
    }
  }
  if (reference.pareto.size() != merged.pareto.size()) return false;
  for (std::size_t i = 0; i < reference.pareto.size(); ++i) {
    if (reference.pareto[i].area_mm2 != merged.pareto[i].area_mm2 ||
        reference.pareto[i].power_mw != merged.pareto[i].power_mw) {
      return false;
    }
  }
  return true;
}

double now_run_sweep_ms(const select::ExplorationRequest& request,
                        const sweep::SweepOptions& options,
                        sweep::SweepResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = sweep::run_sweep(request, options);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int run_probe(const std::string& json_path) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto request = grid_request(app, library);

  bench::print_heading(
      "Distributed sweep probe: run_sweep vs in-process explorer "
      "(VOPD, 3 obj x 4 routing x 2 BW, full library)");

  select::DesignSpaceExplorer explorer;
  const auto t0 = std::chrono::steady_clock::now();
  const auto reference = explorer.explore(request);
  const auto t1 = std::chrono::steady_clock::now();
  const double single_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const std::size_t total = reference.results.size();

  // ---- Merge bit-identity across shard counts. ----
  bool merge_identical = true;
  {
    util::Table table({"shards", "workers", "wall ms", "bit-identical"});
    for (const int shards : kShardCounts) {
      sweep::SweepOptions options;
      options.num_workers = 2;
      options.num_shards = shards;
      sweep::SweepResult result;
      const double ms = now_run_sweep_ms(request, options, &result);
      const bool same = identical(reference, result.report);
      merge_identical &= same;
      table.add_row({std::to_string(shards), "2", util::Table::num(ms, 1),
                     same ? "yes" : "NO"});
    }
    std::printf("%s", table.to_string().c_str());
  }

  // ---- Worker scaling. ----
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::vector<double> worker_ms;
  {
    util::Table table({"workers", "wall ms", "speedup vs single"});
    for (const int workers : kWorkerCounts) {
      sweep::SweepOptions options;
      options.num_workers = workers;
      sweep::SweepResult result;
      const double ms = now_run_sweep_ms(request, options, &result);
      merge_identical &= identical(reference, result.report);
      worker_ms.push_back(ms);
      table.add_row({std::to_string(workers), util::Table::num(ms, 1),
                     util::Table::num(single_ms / ms, 2) + "x"});
    }
    std::printf("single-process explore: %.1f ms\n%s", single_ms,
                table.to_string().c_str());
  }
  const double speedup_2w = worker_ms[1] > 0.0 ? single_ms / worker_ms[1] : 0.0;

  // ---- Checkpoint resume: cut the journal in half, resume the rest. ----
  const std::string journal_path = "BENCH_distributed.ckpt";
  bool resume_identical = false;
  std::size_t resume_from_checkpoint = 0;
  std::size_t resume_evaluated = 0;
  {
    sweep::SweepOptions options;
    options.num_workers = 2;
    options.num_shards = 3;
    options.checkpoint_path = journal_path;
    sweep::SweepResult full;
    (void)now_run_sweep_ms(request, options, &full);

    auto contents = sweep::read_journal(journal_path);
    contents.records.resize(contents.records.size() / 2);
    {
      auto writer =
          sweep::JournalWriter::create(journal_path, contents.header);
      for (const auto& record : contents.records) writer.append(record);
      writer.close();
    }

    options.resume = true;
    sweep::SweepResult resumed;
    (void)now_run_sweep_ms(request, options, &resumed);
    resume_from_checkpoint = resumed.stats.points_from_checkpoint;
    resume_evaluated = resumed.stats.points_evaluated;
    resume_identical = identical(reference, resumed.report) &&
                       resume_from_checkpoint == contents.records.size() &&
                       resume_evaluated == total - resume_from_checkpoint;
    std::printf(
        "resume: %zu points from checkpoint + %zu evaluated = %zu total, "
        "bit-identical %s\n",
        resume_from_checkpoint, resume_evaluated, total,
        resume_identical ? "yes" : "NO");
    std::remove(journal_path.c_str());
  }

  if (!merge_identical) {
    std::fprintf(stderr,
                 "FAIL: a merged sweep report diverged from the "
                 "single-process explorer\n");
    return 1;
  }
  if (!resume_identical) {
    std::fprintf(stderr,
                 "FAIL: the resumed sweep diverged or re-evaluated "
                 "journaled points\n");
    return 1;
  }
  if (hardware_threads >= 2 && speedup_2w < 1.7) {
    std::fprintf(stderr,
                 "FAIL: 2-worker sweep is only %.2fx the single-process "
                 "explore on a %u-thread machine (need >= 1.7x)\n",
                 speedup_2w, hardware_threads);
    return 1;
  }
  if (hardware_threads < 2) {
    std::printf(
        "note: %u hardware thread(s); the 2-worker >= 1.7x bar is "
        "informational here (%.2fx measured)\n",
        hardware_threads, speedup_2w);
  }

  if (json_path.empty()) return 0;
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"distributed_sweep_vopd_grid\",\n"
               "  \"design_points\": %zu,\n"
               "  \"single_process_ms\": %.3f,\n"
               "  \"sub_benchmarks\": {\"workers_1\": %.3f, "
               "\"workers_2\": %.3f},\n"
               "  \"wall_ms\": %.3f,\n"
               "  \"worker_scaling\": [\n"
               "    {\"workers\": 1, \"ms\": %.3f, \"speedup\": %.3f},\n"
               "    {\"workers\": 2, \"ms\": %.3f, \"speedup\": %.3f}\n"
               "  ],\n"
               "  \"shard_counts_checked\": [1, 2, 3, 7],\n"
               "  \"hardware_threads\": %u,\n"
               "  \"resume_points_from_checkpoint\": %zu,\n"
               "  \"merge_bit_identical\": %s,\n"
               "  \"resume_bit_identical\": %s\n"
               "}\n",
               total, single_ms, worker_ms[0], worker_ms[1], worker_ms[1],
               worker_ms[0], single_ms / worker_ms[0], worker_ms[1],
               speedup_2w, hardware_threads, resume_from_checkpoint,
               merge_identical ? "true" : "false",
               resume_identical ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

void BM_DistributedSweep2Workers(benchmark::State& state) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto request = grid_request(app, library);
  sweep::SweepOptions options;
  options.num_workers = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep::run_sweep(request, options));
  }
  state.SetLabel("24-point grid, 2 forked workers, merged report");
}
BENCHMARK(BM_DistributedSweep2Workers)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --json[=path] flag before google-benchmark sees the
  // arguments.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_distributed.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  argc = kept;

  const int status = run_probe(json_path);
  if (status != 0) return status;
  return sunmap::bench::run_benchmarks(argc, argv);
}
