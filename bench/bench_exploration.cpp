// Experiment EXPLORE — the cross-PR perf probe for the batched
// design-space exploration API. Two grids over the VOPD decoder and the
// full standard topology library, each run two ways:
//
//  * sweep — 3 objectives x 4 routing functions (the grid behind Figs 6/7);
//  * grid  — the same plus a 2-value link-bandwidth axis (the paper's
//            §6.3 bandwidth exploration, Fig 9(a)): 24 design points.
//
//  * naive   — TopologySelector::select once per configuration, re-paying
//              the per-topology context construction and every evaluation
//              from scratch for each design point;
//  * batched — one DesignSpaceExplorer::explore call, which builds one
//              evaluation context per topology, re-binds it across the
//              grid, and shares the context's floorplan/metrics caches
//              between design points.
//
// The probe asserts the two are bit-identical (mappings, evaluations,
// winners) and reports the wall-clock ratio; `--json[=path]` dumps the
// result as BENCH_exploration.json so CI tracks the trajectory across PRs.
// Both sides run single-threaded so the ratio isolates the structural
// reuse; the explorer's cross-topology parallelism multiplies on top.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "mapping/eval_context.h"
#include "select/explorer.h"
#include "topo/library.h"
#include "util/table.h"

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

namespace {

using namespace sunmap;

constexpr mapping::Objective kObjectives[] = {mapping::Objective::kMinDelay,
                                              mapping::Objective::kMinArea,
                                              mapping::Objective::kMinPower};

select::ExplorationRequest sweep_request(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library,
    bool bandwidth_axis) {
  select::ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.base = sunmap::bench::video_config();
  request.objectives.assign(std::begin(kObjectives), std::end(kObjectives));
  request.routings.assign(std::begin(route::kAllRoutingKinds),
                          std::end(route::kAllRoutingKinds));
  if (bandwidth_axis) request.link_bandwidths_mbps = {500.0, 1000.0};
  return request;
}

/// The per-config loop the explorer replaces: select() per design point.
std::vector<select::SelectionReport> run_naive(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library,
    const std::vector<select::DesignPoint>& points) {
  std::vector<select::SelectionReport> reports;
  reports.reserve(points.size());
  for (const auto& point : points) {
    select::TopologySelector selector(point.config);
    reports.push_back(selector.select(app, library));
  }
  return reports;
}

bool same_eval(const mapping::Evaluation& a, const mapping::Evaluation& b) {
  return a.feasible() == b.feasible() && a.cost == b.cost &&
         a.avg_switch_hops == b.avg_switch_hops &&
         a.avg_path_latency_ns == b.avg_path_latency_ns &&
         a.design_area_mm2 == b.design_area_mm2 &&
         a.design_power_mw == b.design_power_mw &&
         a.max_link_load_mbps == b.max_link_load_mbps;
}

/// Bit-identical comparison of the batched report against the naive loop:
/// identical mappings, identical evaluations, identical per-point winners.
bool identical(const select::ExplorationReport& batched,
               const std::vector<select::SelectionReport>& naive) {
  if (batched.results.size() != naive.size()) return false;
  for (std::size_t p = 0; p < naive.size(); ++p) {
    const auto& b = batched.results[p].selection;
    const auto& n = naive[p];
    if (b.best_index != n.best_index) return false;
    if (b.candidates.size() != n.candidates.size()) return false;
    for (std::size_t t = 0; t < n.candidates.size(); ++t) {
      if (b.candidates[t].result.core_to_slot !=
          n.candidates[t].result.core_to_slot) {
        return false;
      }
      if (!same_eval(b.candidates[t].result.eval,
                     n.candidates[t].result.eval)) {
        return false;
      }
    }
  }
  return true;
}

struct ProbeResult {
  std::size_t points = 0;
  double naive_ms = 0.0;
  double batched_ms = 0.0;
  std::uint64_t contexts_built = 0;
  bool bit_identical = false;

  [[nodiscard]] double speedup() const {
    return batched_ms > 0.0 ? naive_ms / batched_ms : 0.0;
  }
};

ProbeResult run_one(const mapping::CoreGraph& app,
                    const std::vector<std::unique_ptr<topo::Topology>>& library,
                    bool bandwidth_axis) {
  const auto request = sweep_request(app, library, bandwidth_axis);
  const auto points = select::DesignSpaceExplorer::expand(request);

  ProbeResult probe;
  probe.points = points.size();

  const auto t0 = std::chrono::steady_clock::now();
  const auto naive = run_naive(app, library, points);
  const auto t1 = std::chrono::steady_clock::now();

  const auto contexts_before = mapping::EvalContext::contexts_built();
  select::DesignSpaceExplorer explorer;
  const auto t2 = std::chrono::steady_clock::now();
  const auto batched = explorer.explore(request);
  const auto t3 = std::chrono::steady_clock::now();
  probe.contexts_built =
      mapping::EvalContext::contexts_built() - contexts_before;

  probe.naive_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  probe.batched_ms =
      std::chrono::duration<double, std::milli>(t3 - t2).count();
  probe.bit_identical = identical(batched, naive);
  return probe;
}

int run_probe(const std::string& json_path) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());

  bench::print_heading(
      "Batched exploration probe: DesignSpaceExplorer vs per-config "
      "TopologySelector loop (VOPD, full library, single-threaded)");

  const auto sweep = run_one(app, library, /*bandwidth_axis=*/false);
  const auto grid = run_one(app, library, /*bandwidth_axis=*/true);

  util::Table table({"workload", "points", "naive ms", "batched ms",
                     "speedup", "contexts built", "bit-identical"});
  const auto row = [&](const char* name, const ProbeResult& probe) {
    table.add_row({name, std::to_string(probe.points),
                   util::Table::num(probe.naive_ms, 1),
                   util::Table::num(probe.batched_ms, 1),
                   util::Table::num(probe.speedup(), 2) + "x",
                   std::to_string(probe.contexts_built) + "/" +
                       std::to_string(library.size()),
                   probe.bit_identical ? "yes" : "NO"});
  };
  row("3 obj x 4 routing", sweep);
  row("3 obj x 4 routing x 2 BW", grid);
  std::printf("%s", table.to_string().c_str());

  const auto stats = mapping::EvalContext::cache_stats();
  std::printf(
      "context caches since process start: floorplan %llu/%llu hits, "
      "metrics %llu/%llu hits\n",
      static_cast<unsigned long long>(stats.floorplan_hits),
      static_cast<unsigned long long>(stats.floorplan_hits +
                                      stats.floorplan_misses),
      static_cast<unsigned long long>(stats.metrics_hits),
      static_cast<unsigned long long>(stats.metrics_hits +
                                      stats.metrics_misses));

  for (const auto* probe : {&sweep, &grid}) {
    if (!probe->bit_identical) {
      std::fprintf(stderr,
                   "FAIL: batched exploration diverged from the per-config "
                   "loop\n");
      return 1;
    }
    if (probe->contexts_built != library.size()) {
      std::fprintf(
          stderr, "FAIL: expected one context per topology (%zu), built %llu\n",
          library.size(),
          static_cast<unsigned long long>(probe->contexts_built));
      return 1;
    }
  }

  if (json_path.empty()) return 0;
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"exploration_vopd_full_library\",\n"
               "  \"sweep_3obj_4routing\": {\"design_points\": %zu, "
               "\"naive_ms\": %.3f, \"batched_ms\": %.3f, "
               "\"speedup\": %.3f},\n"
               "  \"grid_3obj_4routing_2bw\": {\"design_points\": %zu, "
               "\"naive_ms\": %.3f, \"batched_ms\": %.3f, "
               "\"speedup\": %.3f},\n"
               "  \"wall_ms\": %.3f,\n"
               "  \"contexts_built_per_run\": %llu,\n"
               "  \"topologies\": %zu,\n"
               "  \"explorer_threads\": 1,\n"
               "  \"bit_identical\": %s\n"
               "}\n",
               sweep.points, sweep.naive_ms, sweep.batched_ms,
               sweep.speedup(), grid.points, grid.naive_ms, grid.batched_ms,
               grid.speedup(), grid.batched_ms,
               static_cast<unsigned long long>(grid.contexts_built),
               library.size(),
               sweep.bit_identical && grid.bit_identical ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

void BM_ExplorerSweep(benchmark::State& state) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto request =
      sweep_request(app, library, /*bandwidth_axis=*/false);
  select::DesignSpaceExplorer explorer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(explorer.explore(request));
  }
  state.SetLabel("12-point sweep, shared contexts");
}
BENCHMARK(BM_ExplorerSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --json[=path] flag before google-benchmark sees the
  // arguments.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_exploration.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  argc = kept;

  const int status = run_probe(json_path);
  if (status != 0) return status;
  return sunmap::bench::run_benchmarks(argc, argv);
}
