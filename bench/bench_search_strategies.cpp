// Experiment SEARCH — the cross-PR perf probe for the pluggable mapping
// search subsystem. Two sections, over VOPD / MPEG4 / netproc16 on their
// meshes:
//
//  * strategies — greedy swaps vs single-seed simulated annealing vs the
//    multi-restart annealer at the SAME total iteration budget. The restart
//    annealer must never return a worse cost than the single-seed chain on
//    the VOPD mesh (the acceptance bar for best-of-restarts).
//
//  * pruning — min-area and min-power greedy-swap searches with the
//    objective-generic lower-bound pruning on vs off. The pruned search
//    must return the bit-identical mapping and cost (the bounds are
//    admissible) while pruning the majority of candidates.
//
// `--json[=path]` dumps BENCH_search.json so CI tracks both wall clocks and
// the correctness invariants across PRs.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "topo/library.h"
#include "util/table.h"

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace sunmap;

struct Workload {
  const char* name;
  mapping::CoreGraph app;
  std::unique_ptr<topo::Topology> mesh;
  /// Link capacity making the mesh mapping bandwidth-feasible (the paper's
  /// 500 MB/s for VOPD; MPEG4 and netproc peak at ~900 MB/s links). The
  /// bound pruning requires a feasible incumbent, as production-sized
  /// searches have, so an infeasible workload would measure nothing.
  double link_bandwidth_mbps;
};

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  out.push_back({"vopd", apps::vopd(), nullptr, 500.0});
  out.push_back({"mpeg4", apps::mpeg4(), nullptr, 1000.0});
  out.push_back({"netproc16", apps::netproc16(), nullptr, 1000.0});
  for (auto& w : out) w.mesh = topo::make_mesh_for(w.app.num_cores());
  return out;
}

double timed_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

constexpr int kAnnealIterations = 2000;
constexpr int kRestarts = 4;

struct StrategyRow {
  std::string key;
  double wall_ms = 0.0;
  double cost = 0.0;
  bool feasible = false;
  int evaluated = 0;
};

struct PruneRow {
  std::string key;
  double pruned_ms = 0.0;
  double unpruned_ms = 0.0;
  int evaluated = 0;
  int pruned = 0;
  bool bit_identical = false;

  [[nodiscard]] double fraction() const {
    return evaluated > 0 ? static_cast<double>(pruned) / evaluated : 0.0;
  }
};

mapping::MapperConfig strategy_config(mapping::SearchKind kind,
                                      const Workload& w) {
  auto config = sunmap::bench::video_config();
  config.link_bandwidth_mbps = w.link_bandwidth_mbps;
  config.search = kind;
  config.annealing_iterations = kAnnealIterations;
  config.annealing_restarts = kRestarts;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --json[=path] flag before google-benchmark sees the
  // arguments.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_search.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  argc = kept;

  const auto total_start = std::chrono::steady_clock::now();
  auto loads = workloads();

  // ---- Strategy comparison at equal total iteration budget. ----
  bench::print_heading(
      "Search strategies: greedy swaps vs single-seed SA vs restart SA "
      "(equal total iterations)");
  std::vector<StrategyRow> strategy_rows;
  util::Table strategies({"app", "strategy", "wall ms", "cost", "feasible",
                          "evaluated"});
  bool restart_never_worse = true;
  for (const auto& w : loads) {
    double single_cost = 0.0;
    double restart_cost = 0.0;
    for (const auto kind : {mapping::SearchKind::kGreedySwaps,
                            mapping::SearchKind::kAnnealing,
                            mapping::SearchKind::kRestartAnnealing}) {
      const mapping::Mapper mapper(strategy_config(kind, w));
      mapping::MappingResult result;
      const double ms =
          timed_ms([&] { result = mapper.map(w.app, *w.mesh); });
      StrategyRow row;
      row.key = std::string(w.name) + "_" + mapping::to_string(kind);
      row.wall_ms = ms;
      row.cost = result.eval.cost;
      row.feasible = result.eval.feasible();
      row.evaluated = result.evaluated_mappings;
      strategies.add_row({w.name, mapping::to_string(kind),
                          util::Table::num(ms, 1),
                          util::Table::num(row.cost, 4),
                          row.feasible ? "yes" : "no",
                          std::to_string(row.evaluated)});
      if (kind == mapping::SearchKind::kAnnealing) single_cost = row.cost;
      if (kind == mapping::SearchKind::kRestartAnnealing) {
        restart_cost = row.cost;
      }
      strategy_rows.push_back(std::move(row));
    }
    if (restart_cost > single_cost) {
      restart_never_worse = false;
      std::fprintf(stderr,
                   "FAIL: restart annealer worse than single seed on %s "
                   "(%.17g > %.17g)\n",
                   w.name, restart_cost, single_cost);
    }
  }
  std::printf("%s", strategies.to_string().c_str());

  // ---- Bound-pruning effectiveness + admissibility. ----
  bench::print_heading(
      "Objective-generic bound pruning: min-area / min-power greedy swaps, "
      "pruned vs prune-disabled reference");
  std::vector<PruneRow> prune_rows;
  util::Table pruning({"app", "objective", "pruned ms", "unpruned ms",
                       "evaluated", "pruned", "fraction", "bit-identical"});
  bool all_identical = true;
  double min_fraction = 1.0;
  for (const auto& w : loads) {
    for (const auto objective :
         {mapping::Objective::kMinArea, mapping::Objective::kMinPower}) {
      auto config = sunmap::bench::video_config();
      config.link_bandwidth_mbps = w.link_bandwidth_mbps;
      config.objective = objective;
      const mapping::Mapper fast(config);
      auto reference_config = config;
      reference_config.bound_pruning = false;
      const mapping::Mapper reference(reference_config);

      mapping::MappingResult pruned_result, reference_result;
      PruneRow row;
      row.key = std::string(w.name) + "_" + mapping::to_string(objective);
      row.pruned_ms =
          timed_ms([&] { pruned_result = fast.map(w.app, *w.mesh); });
      row.unpruned_ms = timed_ms(
          [&] { reference_result = reference.map(w.app, *w.mesh); });
      row.evaluated = pruned_result.evaluated_mappings;
      row.pruned = pruned_result.pruned_mappings;
      row.bit_identical =
          pruned_result.core_to_slot == reference_result.core_to_slot &&
          pruned_result.eval.cost == reference_result.eval.cost &&
          pruned_result.eval.design_area_mm2 ==
              reference_result.eval.design_area_mm2 &&
          pruned_result.eval.design_power_mw ==
              reference_result.eval.design_power_mw;
      all_identical = all_identical && row.bit_identical;
      min_fraction = std::min(min_fraction, row.fraction());
      pruning.add_row({w.name, mapping::to_string(objective),
                       util::Table::num(row.pruned_ms, 1),
                       util::Table::num(row.unpruned_ms, 1),
                       std::to_string(row.evaluated),
                       std::to_string(row.pruned),
                       util::Table::num(row.fraction(), 3),
                       row.bit_identical ? "yes" : "NO"});
      prune_rows.push_back(std::move(row));
    }
  }
  std::printf("%s", pruning.to_string().c_str());

  // ---- Transactional incremental floorplanning across SA accept/reject. --
  //
  // Simulated annealing is the pathological client of incremental
  // floorplanning: roughly half its candidates are rejected, so before the
  // DeltaTxn protocol every rejected swap left the scratch session dirty.
  // This section runs the SA workloads with the transactional incremental
  // path (the default) against the from-scratch reference
  // (MapperConfig::incremental_floorplan = false) and enforces both
  // bit-identity and the wall-clock win.
  //
  // Setup notes: netproc16 is excluded — its cores share one shape class on
  // a fully occupied mesh, so every mapping has the same floorplan key and
  // the floorplan path is never exercised. Routing is dimension-ordered
  // (static route tables): under the load-adaptive functions the per-eval
  // Dijkstras dominate wall time equally on both sides and would only
  // drown the floorplan signal being gated. Each workload runs with the
  // default sizing descent (reported, gated >= 1.25x in aggregate — the
  // descent itself runs identically on both sides) and with the rigid
  // engine (sizing_passes = 0, gated >= 2x in aggregate, where the
  // delta-vs-rebuild win is isolated).
  bench::print_heading(
      "Transactional SA: incremental floorplan deltas across accept/reject "
      "vs from-scratch reference (bit-identical by contract)");
  struct SaRow {
    std::string key;
    double incremental_ms = 0.0;
    double reference_ms = 0.0;
    bool bit_identical = false;

    [[nodiscard]] double speedup() const {
      return incremental_ms > 0.0 ? reference_ms / incremental_ms : 0.0;
    }
  };
  apps::SyntheticSpec synth_spec;
  synth_spec.num_cores = 48;
  synth_spec.edge_density = 0.05;
  synth_spec.seed = 42;
  const auto synth_app = apps::synthetic(synth_spec);
  const auto synth_mesh = topo::make_mesh_for(64);
  struct SaWorkload {
    std::string name;
    const mapping::CoreGraph* app;
    const topo::Topology* mesh;
    double link_bandwidth_mbps;
    int iterations;
  };
  std::vector<SaWorkload> sa_workloads;
  sa_workloads.push_back(
      {"vopd", &loads[0].app, loads[0].mesh.get(), 500.0, kAnnealIterations});
  sa_workloads.push_back(
      {"mpeg4", &loads[1].app, loads[1].mesh.get(), 1000.0,
       kAnnealIterations});
  sa_workloads.push_back(
      {"synth48", &synth_app, synth_mesh.get(), 4000.0, 1000});

  std::vector<SaRow> sa_rows;
  util::Table sa_table({"workload", "sizing", "incremental ms",
                        "from-scratch ms", "speedup", "bit-identical"});
  bool sa_identical = true;
  double sized_inc_total = 0.0, sized_ref_total = 0.0;
  double rigid_inc_total = 0.0, rigid_ref_total = 0.0;
  for (const auto& w : sa_workloads) {
    for (const bool rigid : {false, true}) {
      mapping::MapperConfig config;
      config.routing = route::RoutingKind::kDimensionOrdered;
      config.link_bandwidth_mbps = w.link_bandwidth_mbps;
      config.search = mapping::SearchKind::kAnnealing;
      config.annealing_iterations = w.iterations;
      if (rigid) config.floorplan.sizing_passes = 0;

      mapping::MappingResult incremental_result, reference_result;
      double incremental_ms = std::numeric_limits<double>::infinity();
      double reference_ms = std::numeric_limits<double>::infinity();
      for (int round = 0; round < 3; ++round) {
        const mapping::Mapper mapper(config);
        incremental_ms = std::min(incremental_ms, timed_ms([&] {
          incremental_result = mapper.map(*w.app, *w.mesh);
        }));
        auto reference_config = config;
        reference_config.incremental_floorplan = false;
        const mapping::Mapper reference(reference_config);
        reference_ms = std::min(reference_ms, timed_ms([&] {
          reference_result = reference.map(*w.app, *w.mesh);
        }));
      }
      SaRow row;
      row.key = w.name + (rigid ? "_sa_rigid" : "_sa");
      row.incremental_ms = incremental_ms;
      row.reference_ms = reference_ms;
      row.bit_identical =
          incremental_result.core_to_slot == reference_result.core_to_slot &&
          incremental_result.eval.cost == reference_result.eval.cost &&
          incremental_result.evaluated_mappings ==
              reference_result.evaluated_mappings;
      sa_identical = sa_identical && row.bit_identical;
      (rigid ? rigid_inc_total : sized_inc_total) += incremental_ms;
      (rigid ? rigid_ref_total : sized_ref_total) += reference_ms;
      sa_table.add_row({w.name, rigid ? "rigid" : "default",
                        util::Table::num(incremental_ms, 1),
                        util::Table::num(reference_ms, 1),
                        util::Table::num(row.speedup(), 2) + "x",
                        row.bit_identical ? "yes" : "NO"});
      sa_rows.push_back(std::move(row));
    }
  }
  const double sa_speedup_rigid =
      rigid_inc_total > 0.0 ? rigid_ref_total / rigid_inc_total : 0.0;
  const double sa_speedup_sized =
      sized_inc_total > 0.0 ? sized_ref_total / sized_inc_total : 0.0;
  std::printf("%saggregate SA speedup: %.2fx rigid, %.2fx with sizing\n",
              sa_table.to_string().c_str(), sa_speedup_rigid,
              sa_speedup_sized);
  const bool annealing_incremental =
      sa_identical && sa_speedup_rigid >= 2.0 && sa_speedup_sized >= 1.25;

  // Per-objective aggregate pruning rates over the three workloads — the
  // acceptance bar: min-area and min-power searches must each bound-prune
  // the majority of their candidates. (Individual runs are reported above;
  // the loosest is min-power on the fully-occupied netproc16 mesh, where
  // the bound is ~94% tight but most candidates are within a few percent
  // of the incumbent.)
  double area_fraction = 0.0;
  double power_fraction = 0.0;
  {
    long area_eval = 0, area_pruned = 0, power_eval = 0, power_pruned = 0;
    for (const auto& row : prune_rows) {
      const bool is_area = row.key.find("min-area") != std::string::npos;
      (is_area ? area_eval : power_eval) += row.evaluated;
      (is_area ? area_pruned : power_pruned) += row.pruned;
    }
    area_fraction =
        area_eval > 0 ? static_cast<double>(area_pruned) / area_eval : 0.0;
    power_fraction =
        power_eval > 0 ? static_cast<double>(power_pruned) / power_eval : 0.0;
    std::printf("aggregate prune fraction: min-area %.3f, min-power %.3f\n",
                area_fraction, power_fraction);
  }

  const auto total_end = std::chrono::steady_clock::now();
  const double total_ms =
      std::chrono::duration<double, std::milli>(total_end - total_start)
          .count();

  int status = 0;
  if (!restart_never_worse) status = 1;
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: pruned search diverged from the prune-disabled "
                 "reference\n");
    status = 1;
  }
  if (!annealing_incremental) {
    std::fprintf(stderr,
                 "FAIL: transactional SA lost its incremental-floorplan win "
                 "(bit-identical %s, rigid %.2fx vs the 2x bar, sized %.2fx "
                 "vs the 1.25x bar)\n",
                 sa_identical ? "yes" : "NO", sa_speedup_rigid,
                 sa_speedup_sized);
    status = 1;
  }
  if (area_fraction <= 0.5 || power_fraction <= 0.5) {
    std::fprintf(stderr,
                 "FAIL: aggregate bound pruning below the 50%% bar "
                 "(min-area %.1f%%, min-power %.1f%%)\n",
                 100.0 * area_fraction, 100.0 * power_fraction);
    status = 1;
  }

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"search_strategies\",\n"
                 "  \"wall_ms\": %.3f,\n"
                 "  \"anneal_iterations\": %d,\n"
                 "  \"restarts\": %d,\n"
                 "  \"restart_never_worse\": %s,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"annealing_incremental\": %s,\n"
                 "  \"annealing_speedup_rigid\": %.3f,\n"
                 "  \"annealing_speedup_sized\": %.3f,\n"
                 "  \"min_prune_fraction\": %.4f,\n"
                 "  \"min_area_prune_fraction\": %.4f,\n"
                 "  \"min_power_prune_fraction\": %.4f,\n",
                 total_ms, kAnnealIterations, kRestarts,
                 restart_never_worse ? "true" : "false",
                 all_identical ? "true" : "false",
                 annealing_incremental ? "true" : "false", sa_speedup_rigid,
                 sa_speedup_sized, min_fraction, area_fraction,
                 power_fraction);
    std::fprintf(out, "  \"annealing\": [\n");
    for (std::size_t i = 0; i < sa_rows.size(); ++i) {
      const auto& row = sa_rows[i];
      std::fprintf(out,
                   "    {\"run\": \"%s\", \"wall_ms\": %.3f, "
                   "\"from_scratch_ms\": %.3f, \"speedup\": %.3f, "
                   "\"bit_identical\": %s}%s\n",
                   row.key.c_str(), row.incremental_ms, row.reference_ms,
                   row.speedup(), row.bit_identical ? "true" : "false",
                   i + 1 < sa_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"strategies\": [\n");
    for (std::size_t i = 0; i < strategy_rows.size(); ++i) {
      const auto& row = strategy_rows[i];
      std::fprintf(out,
                   "    {\"run\": \"%s\", \"wall_ms\": %.3f, "
                   "\"cost\": %.17g, \"feasible\": %s, \"evaluated\": %d}%s\n",
                   row.key.c_str(), row.wall_ms, row.cost,
                   row.feasible ? "true" : "false", row.evaluated,
                   i + 1 < strategy_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"pruning\": [\n");
    for (std::size_t i = 0; i < prune_rows.size(); ++i) {
      const auto& row = prune_rows[i];
      std::fprintf(
          out,
          "    {\"run\": \"%s\", \"wall_ms\": %.3f, "
          "\"unpruned_wall_ms\": %.3f, \"evaluated\": %d, \"pruned\": %d, "
          "\"prune_fraction\": %.4f, \"bit_identical\": %s}%s\n",
          row.key.c_str(), row.pruned_ms, row.unpruned_ms, row.evaluated,
          row.pruned, row.fraction(), row.bit_identical ? "true" : "false",
          i + 1 < prune_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"sub_benchmarks\": {\n");
    for (std::size_t i = 0; i < strategy_rows.size(); ++i) {
      std::fprintf(out, "    \"%s\": %.3f,\n",
                   strategy_rows[i].key.c_str(), strategy_rows[i].wall_ms);
    }
    for (const auto& row : sa_rows) {
      std::fprintf(out, "    \"%s\": %.3f,\n", row.key.c_str(),
                   row.incremental_ms);
    }
    for (std::size_t i = 0; i < prune_rows.size(); ++i) {
      std::fprintf(out, "    \"%s_pruned\": %.3f%s\n",
                   prune_rows[i].key.c_str(), prune_rows[i].pruned_ms,
                   i + 1 < prune_rows.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (status != 0) return status;
  return sunmap::bench::run_benchmarks(argc, argv);
}
