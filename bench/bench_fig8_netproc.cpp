// Experiment FIG8 — reproduces Fig 8(b-d): the 16-node network processor.
// (b) Average packet latency vs injection rate (0.1-0.5 flits/cycle) under
//     adversarial traffic, simulated cycle-accurately: the clos saturates
//     last thanks to its middle-stage path diversity, the butterfly's
//     single paths saturate first ("the clos clearly outperforms other
//     topologies").
// (c,d) Design area and power of the mapped 16-node design with relaxed
//     bandwidth constraints, as the paper does ("by relaxing the bandwidth
//     constraints"): clos costs only slightly more than the butterfly.
//
// Routing per topology is its natural deadlock-free choice: XY/e-cube on
// the direct topologies, split-over-middles on the (feed-forward) clos and
// the butterfly's unique paths.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "select/selector.h"
#include "sim/simulator.h"
#include "topo/library.h"
#include "util/table.h"

namespace {

using namespace sunmap;

route::RoutingKind sim_routing(const topo::Topology& topology) {
  switch (topology.kind()) {
    case topo::TopologyKind::kClos:
      return route::RoutingKind::kSplitMin;
    default:
      return route::RoutingKind::kDimensionOrdered;
  }
}

sim::SimConfig sim_config() {
  sim::SimConfig config;
  config.warmup_cycles = 1500;
  config.measure_cycles = 8000;
  config.drain_cycles = 20000;
  config.seed = 7;
  // Distance-class VCs so beyond-saturation points reflect congestion, not
  // single-VC wormhole deadlock on wraparound/split routes.
  config.distance_class_vcs = true;
  return config;
}

void print_latency_curves() {
  bench::print_heading(
      "Fig 8(b): avg packet latency (cycles) vs injection rate on 16 nodes "
      "under each topology's own adversarial pattern (worst over the "
      "permutation set, as the paper generates \"adversarial traffic for "
      "each topology\") — clos flattest, others saturate ('sat') earlier");
  const auto library = topo::standard_library(16);
  const double rates[] = {0.1, 0.2, 0.3, 0.4, 0.5};
  const sim::Pattern patterns[] = {
      sim::Pattern::kTranspose, sim::Pattern::kBitComplement,
      sim::Pattern::kBitReverse, sim::Pattern::kTornado,
      sim::Pattern::kShuffle};
  util::Table table({"topology", "worst pattern", "0.1", "0.2", "0.3", "0.4",
                     "0.5"});
  for (const auto& topology : library) {
    const auto routes =
        sim::RouteTable::all_pairs(*topology, sim_routing(*topology));
    // The adversarial pattern for this topology: the permutation with the
    // worst behaviour at the midpoint rate.
    sim::Pattern adversarial = patterns[0];
    double worst_score = -1.0;
    for (sim::Pattern pattern : patterns) {
      const auto probe =
          sim::simulate_pattern(*topology, routes, pattern, 0.3,
                                sim_config());
      const double score = probe.saturated ? 1e12 + probe.avg_latency_cycles
                                           : probe.avg_latency_cycles;
      if (score > worst_score) {
        worst_score = score;
        adversarial = pattern;
      }
    }
    std::vector<std::string> row{topology->name(),
                                 sim::to_string(adversarial)};
    for (double rate : rates) {
      const auto stats = sim::simulate_pattern(*topology, routes, adversarial,
                                               rate, sim_config());
      row.push_back(stats.saturated
                        ? "sat"
                        : util::Table::num(stats.avg_latency_cycles, 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
}

void print_area_power() {
  bench::print_heading(
      "Fig 8(c,d): 16-node design area and power with relaxed bandwidth "
      "constraints (paper: clos only slightly above the butterfly)");
  const auto app = apps::netproc16();
  const auto library = topo::standard_library(16);
  auto config = bench::video_config();
  config.routing = route::RoutingKind::kSplitMin;
  config.link_bandwidth_mbps = 1e9;  // relaxed, as in the paper
  select::TopologySelector selector(config);
  const auto report = selector.select(app, library);
  util::Table table({"topology", "area (mm2)", "power (mW)", "avg hops"});
  for (const auto& candidate : report.candidates) {
    const auto& eval = candidate.result.eval;
    table.add_row({candidate.topology->name(),
                   util::Table::num(eval.design_area_mm2),
                   util::Table::num(eval.design_power_mw, 1),
                   util::Table::num(eval.avg_switch_hops)});
  }
  std::printf("%s", table.to_string().c_str());
}

void BM_SimulateClos16(benchmark::State& state) {
  const auto clos = topo::make_clos_for(16);
  const auto routes =
      sim::RouteTable::all_pairs(*clos, route::RoutingKind::kSplitMin);
  for (auto _ : state) {
    auto stats = sim::simulate_pattern(*clos, routes,
                                       sim::Pattern::kBitComplement, 0.3,
                                       sim_config());
    benchmark::DoNotOptimize(stats);
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(stats.cycles), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_SimulateClos16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_latency_curves();
  print_area_power();
  return sunmap::bench::run_benchmarks(argc, argv);
}
