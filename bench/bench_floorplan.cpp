// Experiment ABL-FP — floorplanner ablations called out in DESIGN.md:
//  * the simplex LP engine vs the longest-path constraint-graph engine
//    (identical chip extents, very different runtime — why the swap loop
//    uses the longest-path engine);
//  * soft-block aspect-ratio sizing on vs off.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "fplan/floorplanner.h"
#include "topo/library.h"
#include "util/table.h"

namespace {

using namespace sunmap;

struct Inputs {
  std::vector<std::optional<fplan::BlockShape>> cores;
  std::vector<fplan::BlockShape> switches;
};

Inputs vopd_inputs(const topo::Topology& topology) {
  const auto app = apps::vopd();
  Inputs inputs;
  inputs.cores.resize(static_cast<std::size_t>(topology.num_slots()));
  for (int c = 0; c < app.num_cores() && c < topology.num_slots(); ++c) {
    inputs.cores[static_cast<std::size_t>(c)] = app.core(c).shape;
  }
  inputs.switches.assign(static_cast<std::size_t>(topology.num_switches()),
                         fplan::BlockShape::soft_block(0.25));
  return inputs;
}

void print_engine_comparison() {
  bench::print_heading(
      "Floorplan engines: simplex LP vs constraint-graph longest path "
      "(identical extents by construction)");
  util::Table table({"topology", "LP W+H (mm)", "longest-path W+H (mm)",
                     "LP area (mm2)"});
  const auto library = topo::standard_library(12);
  for (const auto& topology : library) {
    const auto inputs = vopd_inputs(*topology);
    fplan::Floorplanner::Options lp_options;
    lp_options.engine = fplan::Floorplanner::Engine::kSimplexLp;
    const auto lp = fplan::Floorplanner(lp_options).place(
        topology->relative_placement(), inputs.cores, inputs.switches);
    const auto band = fplan::Floorplanner().place(
        topology->relative_placement(), inputs.cores, inputs.switches);
    table.add_row({topology->name(),
                   util::Table::num(lp.width_mm() + lp.height_mm()),
                   util::Table::num(band.width_mm() + band.height_mm()),
                   util::Table::num(lp.area_mm2())});
  }
  std::printf("%s", table.to_string().c_str());
}

void print_sizing_ablation() {
  bench::print_heading("Soft-block aspect-ratio sizing ablation");
  util::Table table({"topology", "area rigid (mm2)", "area sized (mm2)",
                     "saving"});
  const auto library = topo::standard_library(12);
  for (const auto& topology : library) {
    const auto inputs = vopd_inputs(*topology);
    fplan::Floorplanner::Options rigid_options;
    rigid_options.sizing_passes = 0;
    fplan::Floorplanner::Options sized_options;
    sized_options.sizing_passes = 2;
    const auto rigid = fplan::Floorplanner(rigid_options).place(
        topology->relative_placement(), inputs.cores, inputs.switches);
    const auto sized = fplan::Floorplanner(sized_options).place(
        topology->relative_placement(), inputs.cores, inputs.switches);
    table.add_row(
        {topology->name(), util::Table::num(rigid.area_mm2()),
         util::Table::num(sized.area_mm2()),
         util::Table::num(100.0 * (1.0 - sized.area_mm2() /
                                             rigid.area_mm2()),
                          1) +
             "%"});
  }
  std::printf("%s", table.to_string().c_str());
}

void BM_FloorplanLongestPath(benchmark::State& state) {
  const auto mesh = topo::make_mesh_for(12);
  const auto inputs = vopd_inputs(*mesh);
  fplan::Floorplanner planner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.place(mesh->relative_placement(),
                                           inputs.cores, inputs.switches));
  }
}
BENCHMARK(BM_FloorplanLongestPath)->Unit(benchmark::kMicrosecond);

void BM_FloorplanSimplexLp(benchmark::State& state) {
  const auto mesh = topo::make_mesh_for(12);
  const auto inputs = vopd_inputs(*mesh);
  fplan::Floorplanner::Options options;
  options.engine = fplan::Floorplanner::Engine::kSimplexLp;
  fplan::Floorplanner planner(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.place(mesh->relative_placement(),
                                           inputs.cores, inputs.switches));
  }
}
BENCHMARK(BM_FloorplanSimplexLp)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_engine_comparison();
  print_sizing_ablation();
  return sunmap::bench::run_benchmarks(argc, argv);
}
