// Experiment ABL-FP — floorplanner ablations called out in DESIGN.md:
//  * the simplex LP engine vs the longest-path constraint-graph engine
//    (identical chip extents, very different runtime — why the swap loop
//    uses the longest-path engine);
//  * soft-block aspect-ratio sizing on vs off.
//
// Plus the cross-PR floorplan perf probe: a randomized pairwise-swap
// sequence driven once through stateless from-scratch Floorplanner::place
// calls and once through an incremental fplan::FloorplanSession. The two
// must agree bit-for-bit on every step (chip W/H, area, every block), and
// the session must be at least 2x faster — `--json[=path]` dumps
// BENCH_floorplan.json with both invariants so CI tracks them across PRs,
// and the binary exits nonzero when either fails.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "fplan/floorplanner.h"
#include "fplan/session.h"
#include "topo/library.h"
#include "util/prng.h"
#include "util/table.h"

#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace sunmap;

struct Inputs {
  std::vector<std::optional<fplan::BlockShape>> cores;
  std::vector<fplan::BlockShape> switches;
};

Inputs app_inputs(const mapping::CoreGraph& app,
                  const topo::Topology& topology) {
  Inputs inputs;
  inputs.cores.resize(static_cast<std::size_t>(topology.num_slots()));
  for (int c = 0; c < app.num_cores() && c < topology.num_slots(); ++c) {
    inputs.cores[static_cast<std::size_t>(c)] = app.core(c).shape;
  }
  inputs.switches.assign(static_cast<std::size_t>(topology.num_switches()),
                         fplan::BlockShape::soft_block(0.25));
  return inputs;
}

Inputs vopd_inputs(const topo::Topology& topology) {
  return app_inputs(apps::vopd(), topology);
}

void print_engine_comparison() {
  bench::print_heading(
      "Floorplan engines: simplex LP vs constraint-graph longest path "
      "(identical extents by construction)");
  util::Table table({"topology", "LP W+H (mm)", "longest-path W+H (mm)",
                     "LP area (mm2)"});
  const auto library = topo::standard_library(12);
  for (const auto& topology : library) {
    const auto inputs = vopd_inputs(*topology);
    fplan::Floorplanner::Options lp_options;
    lp_options.engine = fplan::Floorplanner::Engine::kSimplexLp;
    const auto lp = fplan::Floorplanner(lp_options).place(
        topology->relative_placement(), inputs.cores, inputs.switches);
    const auto band = fplan::Floorplanner().place(
        topology->relative_placement(), inputs.cores, inputs.switches);
    table.add_row({topology->name(),
                   util::Table::num(lp.width_mm() + lp.height_mm()),
                   util::Table::num(band.width_mm() + band.height_mm()),
                   util::Table::num(lp.area_mm2())});
  }
  std::printf("%s", table.to_string().c_str());
}

void print_sizing_ablation() {
  bench::print_heading("Soft-block aspect-ratio sizing ablation");
  util::Table table({"topology", "area rigid (mm2)", "area sized (mm2)",
                     "saving"});
  const auto library = topo::standard_library(12);
  for (const auto& topology : library) {
    const auto inputs = vopd_inputs(*topology);
    fplan::Floorplanner::Options rigid_options;
    rigid_options.sizing_passes = 0;
    fplan::Floorplanner::Options sized_options;
    sized_options.sizing_passes = 2;
    const auto rigid = fplan::Floorplanner(rigid_options).place(
        topology->relative_placement(), inputs.cores, inputs.switches);
    const auto sized = fplan::Floorplanner(sized_options).place(
        topology->relative_placement(), inputs.cores, inputs.switches);
    table.add_row(
        {topology->name(), util::Table::num(rigid.area_mm2()),
         util::Table::num(sized.area_mm2()),
         util::Table::num(100.0 * (1.0 - sized.area_mm2() /
                                             rigid.area_mm2()),
                          1) +
             "%"});
  }
  std::printf("%s", table.to_string().c_str());
}

// ---- Swap-sequence probe: from-scratch place vs incremental session. ----

constexpr int kSwapSteps = 400;
constexpr int kTimingRounds = 3;

struct SwapWorkload {
  std::string name;
  mapping::CoreGraph app;
  std::unique_ptr<topo::Topology> topology;
};

struct SwapRow {
  std::string key;
  double from_scratch_ms = 0.0;
  double incremental_ms = 0.0;
  bool bit_identical = false;

  [[nodiscard]] double speedup() const {
    return incremental_ms > 0.0 ? from_scratch_ms / incremental_ms : 0.0;
  }
};

bool floorplans_equal(const fplan::Floorplan& a, const fplan::Floorplan& b) {
  if (a.width_mm() != b.width_mm() || a.height_mm() != b.height_mm()) {
    return false;
  }
  if (a.blocks().size() != b.blocks().size()) return false;
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    const auto& x = a.blocks()[i];
    const auto& y = b.blocks()[i];
    if (x.kind != y.kind || x.index != y.index || x.x != y.x || x.y != y.y ||
        x.w != y.w || x.h != y.h) {
      return false;
    }
  }
  return true;
}

/// One (slot a, slot b) swap per step, identical across the correctness and
/// timing passes because the Prng is reseeded identically.
struct SwapSequence {
  explicit SwapSequence(int num_slots, std::uint64_t seed = 1234)
      : prng(seed), slots(num_slots) {}
  util::Prng prng;
  int slots;

  std::pair<int, int> next() {
    const int a = prng.next_int(0, slots - 1);
    int b = prng.next_int(0, slots - 2);
    if (b >= a) ++b;
    return {a, b};
  }
};

SwapRow run_swap_probe(const SwapWorkload& workload) {
  const auto placement = workload.topology->relative_placement();
  const fplan::Floorplanner::Options options;
  const fplan::Floorplanner planner(options);
  const int num_slots = workload.topology->num_slots();

  SwapRow row;
  row.key = workload.name;

  // Correctness pass (untimed): every step's incremental solve must equal
  // the from-scratch place bit-for-bit.
  {
    auto inputs = app_inputs(workload.app, *workload.topology);
    fplan::FloorplanSession session(options, placement, inputs.cores,
                                    inputs.switches);
    SwapSequence sequence(num_slots);
    row.bit_identical = floorplans_equal(
        session.solve(),
        planner.place(placement, inputs.cores, inputs.switches));
    std::vector<fplan::SlotShapeUpdate> updates(2);
    for (int step = 0; step < kSwapSteps && row.bit_identical; ++step) {
      const auto [a, b] = sequence.next();
      std::swap(inputs.cores[static_cast<std::size_t>(a)],
                inputs.cores[static_cast<std::size_t>(b)]);
      updates[0] = {a, inputs.cores[static_cast<std::size_t>(a)]};
      updates[1] = {b, inputs.cores[static_cast<std::size_t>(b)]};
      session.update_shapes(updates);
      row.bit_identical = floorplans_equal(
          session.solve(),
          planner.place(placement, inputs.cores, inputs.switches));
    }
  }

  // Timing passes: best of kTimingRounds identical rounds per path, so a
  // one-off scheduler stall on a noisy CI runner cannot fake a slowdown of
  // either side.
  row.from_scratch_ms = std::numeric_limits<double>::infinity();
  row.incremental_ms = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kTimingRounds; ++round) {
    // From-scratch: a fresh Floorplanner::place per step.
    {
      auto inputs = app_inputs(workload.app, *workload.topology);
      SwapSequence sequence(num_slots);
      double blackhole = 0.0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int step = 0; step < kSwapSteps; ++step) {
        const auto [a, b] = sequence.next();
        std::swap(inputs.cores[static_cast<std::size_t>(a)],
                  inputs.cores[static_cast<std::size_t>(b)]);
        blackhole +=
            planner.place(placement, inputs.cores, inputs.switches).area_mm2();
      }
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(blackhole);
      row.from_scratch_ms = std::min(
          row.from_scratch_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }

    // Incremental: one session, two-slot deltas.
    {
      auto inputs = app_inputs(workload.app, *workload.topology);
      fplan::FloorplanSession session(options, placement, inputs.cores,
                                      inputs.switches);
      (void)session.solve();
      SwapSequence sequence(num_slots);
      std::vector<fplan::SlotShapeUpdate> updates(2);
      double blackhole = 0.0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int step = 0; step < kSwapSteps; ++step) {
        const auto [a, b] = sequence.next();
        std::swap(inputs.cores[static_cast<std::size_t>(a)],
                  inputs.cores[static_cast<std::size_t>(b)]);
        updates[0] = {a, inputs.cores[static_cast<std::size_t>(a)]};
        updates[1] = {b, inputs.cores[static_cast<std::size_t>(b)]};
        session.update_shapes(updates);
        blackhole += session.solve().area_mm2();
      }
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(blackhole);
      row.incremental_ms = std::min(
          row.incremental_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  return row;
}

// ---- Annealing-shaped probe: speculative push/solve then commit|rollback
// (the DeltaTxn protocol's floorplan leg) vs a from-scratch place per
// candidate. This is the session traffic a simulated-annealing chain
// generates — roughly half the candidates are rejected, so the session must
// win on the rollback side too, not just on forward deltas.

struct TxnRow {
  std::string key;
  double from_scratch_ms = 0.0;
  double incremental_ms = 0.0;
  bool bit_identical = false;

  [[nodiscard]] double speedup() const {
    return incremental_ms > 0.0 ? from_scratch_ms / incremental_ms : 0.0;
  }
};

TxnRow run_txn_probe(const SwapWorkload& workload,
                     const fplan::Floorplanner::Options& options,
                     const std::string& key) {
  const auto placement = workload.topology->relative_placement();
  const fplan::Floorplanner planner(options);
  const int num_slots = workload.topology->num_slots();

  TxnRow row;
  row.key = key;

  // One candidate per step: speculate the swap with push_shapes, solve,
  // then accept (commit_shapes, the swap stays) or reject (pop_shapes, the
  // baseline returns) — decided by the same Prng stream in every pass.
  const auto drive = [&](auto&& per_candidate) {
    auto inputs = app_inputs(workload.app, *workload.topology);
    SwapSequence sequence(num_slots);
    util::Prng accept_prng(99);
    for (int step = 0; step < kSwapSteps; ++step) {
      const auto [a, b] = sequence.next();
      auto speculative_a = inputs.cores[static_cast<std::size_t>(b)];
      auto speculative_b = inputs.cores[static_cast<std::size_t>(a)];
      const bool accept = accept_prng.chance(0.5);
      per_candidate(inputs, a, b, speculative_a, speculative_b, accept);
      if (accept) {
        std::swap(inputs.cores[static_cast<std::size_t>(a)],
                  inputs.cores[static_cast<std::size_t>(b)]);
      }
    }
  };

  // Correctness pass (untimed): every speculative solve must equal the
  // from-scratch place of the speculative assignment, and every rollback
  // must leave the next speculation bit-identical too.
  {
    auto inputs = app_inputs(workload.app, *workload.topology);
    fplan::FloorplanSession session(options, placement, inputs.cores,
                                    inputs.switches);
    (void)session.solve();
    row.bit_identical = true;
    SwapSequence sequence(num_slots);
    util::Prng accept_prng(99);
    std::vector<fplan::SlotShapeUpdate> updates(2);
    for (int step = 0; step < kSwapSteps && row.bit_identical; ++step) {
      const auto [a, b] = sequence.next();
      auto speculative = inputs.cores;
      std::swap(speculative[static_cast<std::size_t>(a)],
                speculative[static_cast<std::size_t>(b)]);
      updates[0] = {a, speculative[static_cast<std::size_t>(a)]};
      updates[1] = {b, speculative[static_cast<std::size_t>(b)]};
      session.push_shapes(updates);
      row.bit_identical = floorplans_equal(
          session.solve(),
          planner.place(placement, speculative, inputs.switches));
      if (accept_prng.chance(0.5)) {
        session.commit_shapes();
        inputs.cores = std::move(speculative);
      } else {
        session.pop_shapes();
      }
    }
  }

  // Timing passes, best of kTimingRounds per side.
  row.from_scratch_ms = std::numeric_limits<double>::infinity();
  row.incremental_ms = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kTimingRounds; ++round) {
    {
      double blackhole = 0.0;
      const auto t0 = std::chrono::steady_clock::now();
      drive([&](Inputs& inputs, int a, int b,
                const std::optional<fplan::BlockShape>& sa,
                const std::optional<fplan::BlockShape>& sb, bool) {
        auto speculative = inputs.cores;
        speculative[static_cast<std::size_t>(a)] = sa;
        speculative[static_cast<std::size_t>(b)] = sb;
        blackhole +=
            planner.place(placement, speculative, inputs.switches).area_mm2();
      });
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(blackhole);
      row.from_scratch_ms = std::min(
          row.from_scratch_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    {
      auto base = app_inputs(workload.app, *workload.topology);
      fplan::FloorplanSession session(options, placement, base.cores,
                                      base.switches);
      (void)session.solve();
      std::vector<fplan::SlotShapeUpdate> updates(2);
      double blackhole = 0.0;
      const auto t0 = std::chrono::steady_clock::now();
      drive([&](Inputs&, int a, int b,
                const std::optional<fplan::BlockShape>& sa,
                const std::optional<fplan::BlockShape>& sb, bool accept) {
        updates[0] = {a, sa};
        updates[1] = {b, sb};
        session.push_shapes(updates);
        blackhole += session.solve().area_mm2();
        if (accept) {
          session.commit_shapes();
        } else {
          session.pop_shapes();
        }
      });
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(blackhole);
      row.incremental_ms = std::min(
          row.incremental_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  return row;
}

void BM_FloorplanLongestPath(benchmark::State& state) {
  const auto mesh = topo::make_mesh_for(12);
  const auto inputs = vopd_inputs(*mesh);
  fplan::Floorplanner planner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.place(mesh->relative_placement(),
                                           inputs.cores, inputs.switches));
  }
}
BENCHMARK(BM_FloorplanLongestPath)->Unit(benchmark::kMicrosecond);

void BM_FloorplanSimplexLp(benchmark::State& state) {
  const auto mesh = topo::make_mesh_for(12);
  const auto inputs = vopd_inputs(*mesh);
  fplan::Floorplanner::Options options;
  options.engine = fplan::Floorplanner::Engine::kSimplexLp;
  fplan::Floorplanner planner(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.place(mesh->relative_placement(),
                                           inputs.cores, inputs.switches));
  }
}
BENCHMARK(BM_FloorplanSimplexLp)->Unit(benchmark::kMillisecond);

void BM_FloorplanIncrementalSwap(benchmark::State& state) {
  const auto mesh = topo::make_mesh_for(12);
  auto inputs = vopd_inputs(*mesh);
  fplan::FloorplanSession session({}, mesh->relative_placement(),
                                  inputs.cores, inputs.switches);
  (void)session.solve();
  SwapSequence sequence(mesh->num_slots());
  std::vector<fplan::SlotShapeUpdate> updates(2);
  for (auto _ : state) {
    const auto [a, b] = sequence.next();
    std::swap(inputs.cores[static_cast<std::size_t>(a)],
              inputs.cores[static_cast<std::size_t>(b)]);
    updates[0] = {a, inputs.cores[static_cast<std::size_t>(a)]};
    updates[1] = {b, inputs.cores[static_cast<std::size_t>(b)]};
    session.update_shapes(updates);
    benchmark::DoNotOptimize(session.solve().area_mm2());
  }
}
BENCHMARK(BM_FloorplanIncrementalSwap)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --json[=path] flag before google-benchmark sees the
  // arguments.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_floorplan.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  argc = kept;

  const auto total_start = std::chrono::steady_clock::now();
  print_engine_comparison();
  print_sizing_ablation();

  bench::print_heading(
      "Swap-sequence probe: from-scratch place vs incremental session "
      "(bit-identical by contract)");
  std::vector<SwapWorkload> workloads;
  {
    SwapWorkload vopd_mesh{"vopd_mesh", apps::vopd(), nullptr};
    vopd_mesh.topology = topo::make_mesh_for(16);  // 12 cores on 16 slots
    workloads.push_back(std::move(vopd_mesh));
    SwapWorkload mpeg4_mesh{"mpeg4_mesh", apps::mpeg4(), nullptr};
    mpeg4_mesh.topology = topo::make_mesh_for(apps::mpeg4().num_cores());
    workloads.push_back(std::move(mpeg4_mesh));
    SwapWorkload vopd_bfly{"vopd_butterfly", apps::vopd(), nullptr};
    vopd_bfly.topology = topo::make_butterfly_for(apps::vopd().num_cores());
    workloads.push_back(std::move(vopd_bfly));
  }
  // The annealing-shaped probe adds a production-scale point: 48
  // heterogeneous cores on an 8x8 mesh, where the from-scratch rebuild
  // grows with the design while the delta patch stays O(dirty).
  std::vector<SwapWorkload> txn_workloads;
  {
    SwapWorkload vopd_mesh{"vopd_mesh", apps::vopd(), nullptr};
    vopd_mesh.topology = topo::make_mesh_for(16);
    txn_workloads.push_back(std::move(vopd_mesh));
    SwapWorkload mpeg4_mesh{"mpeg4_mesh", apps::mpeg4(), nullptr};
    mpeg4_mesh.topology = topo::make_mesh_for(apps::mpeg4().num_cores());
    txn_workloads.push_back(std::move(mpeg4_mesh));
    SwapWorkload vopd_bfly{"vopd_butterfly", apps::vopd(), nullptr};
    vopd_bfly.topology = topo::make_butterfly_for(apps::vopd().num_cores());
    txn_workloads.push_back(std::move(vopd_bfly));
    apps::SyntheticSpec spec;
    spec.num_cores = 48;
    spec.edge_density = 0.05;
    spec.seed = 42;
    SwapWorkload synth{"synth48_mesh", apps::synthetic(spec), nullptr};
    synth.topology = topo::make_mesh_for(64);
    txn_workloads.push_back(std::move(synth));
  }

  std::vector<SwapRow> rows;
  util::Table table({"workload", "from-scratch ms", "incremental ms",
                     "speedup", "bit-identical"});
  bool all_identical = true;
  double total_scratch = 0.0;
  double total_incremental = 0.0;
  for (const auto& workload : workloads) {
    auto row = run_swap_probe(workload);
    all_identical = all_identical && row.bit_identical;
    total_scratch += row.from_scratch_ms;
    total_incremental += row.incremental_ms;
    table.add_row({row.key, util::Table::num(row.from_scratch_ms, 1),
                   util::Table::num(row.incremental_ms, 1),
                   util::Table::num(row.speedup(), 2) + "x",
                   row.bit_identical ? "yes" : "NO"});
    rows.push_back(std::move(row));
  }
  const double aggregate_speedup =
      total_incremental > 0.0 ? total_scratch / total_incremental : 0.0;
  std::printf("%saggregate incremental speedup: %.2fx over %d swaps x %zu "
              "workloads\n",
              table.to_string().c_str(), aggregate_speedup, kSwapSteps,
              workloads.size());

  bench::print_heading(
      "Annealing-shaped probe: speculative push/solve + commit|rollback vs "
      "from-scratch place per candidate (default + rigid sizing)");
  std::vector<TxnRow> txn_rows;
  util::Table txn_table({"workload", "from-scratch ms", "txn ms", "speedup",
                         "bit-identical"});
  bool txn_identical = true;
  double sized_scratch_total = 0.0, sized_incremental_total = 0.0;
  double rigid_scratch_total = 0.0, rigid_incremental_total = 0.0;
  for (const auto& workload : txn_workloads) {
    // Default sizing first (the evaluation stack's configuration), then the
    // rigid engine (sizing_passes = 0), which isolates the incremental
    // constraint-graph machinery from the sizing descent — the descent runs
    // identically on both sides of the comparison, so the rigid rows are
    // where the delta-vs-rebuild win itself is visible.
    fplan::Floorplanner::Options rigid;
    rigid.sizing_passes = 0;
    for (const auto& [options, key] :
         {std::pair<fplan::Floorplanner::Options, std::string>{{},
                                                               workload.name},
          std::pair<fplan::Floorplanner::Options, std::string>{
              rigid, workload.name + "_rigid"}}) {
      auto row = run_txn_probe(workload, options, key);
      txn_identical = txn_identical && row.bit_identical;
      const bool is_rigid = options.sizing_passes == 0;
      (is_rigid ? rigid_scratch_total : sized_scratch_total) +=
          row.from_scratch_ms;
      (is_rigid ? rigid_incremental_total : sized_incremental_total) +=
          row.incremental_ms;
      txn_table.add_row({row.key, util::Table::num(row.from_scratch_ms, 1),
                         util::Table::num(row.incremental_ms, 1),
                         util::Table::num(row.speedup(), 2) + "x",
                         row.bit_identical ? "yes" : "NO"});
      txn_rows.push_back(std::move(row));
    }
  }
  const double txn_speedup_rigid =
      rigid_incremental_total > 0.0
          ? rigid_scratch_total / rigid_incremental_total
          : 0.0;
  const double txn_speedup_sized =
      sized_incremental_total > 0.0
          ? sized_scratch_total / sized_incremental_total
          : 0.0;
  std::printf("%saggregate annealing-txn speedup: %.2fx rigid, %.2fx with "
              "sizing, over %d accept/reject candidates x %zu workloads\n",
              txn_table.to_string().c_str(), txn_speedup_rigid,
              txn_speedup_sized, kSwapSteps, txn_workloads.size());

  // The tentpole's CI invariant: annealing accept/reject traffic through
  // the transactional session must stay bit-identical AND keep its
  // wall-clock win over from-scratch floorplanning — >= 2x where the
  // rebuild-vs-delta machinery is isolated (rigid), >= 1.4x with the
  // (side-independent) sizing descent folded in — or the build fails.
  const bool annealing_incremental = txn_identical &&
                                     txn_speedup_rigid >= 2.0 &&
                                     txn_speedup_sized >= 1.4;

  const bool incremental_2x = aggregate_speedup >= 2.0;
  int status = 0;
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: incremental session diverged from from-scratch "
                 "Floorplanner::place\n");
    status = 1;
  }
  if (!incremental_2x) {
    std::fprintf(stderr,
                 "FAIL: incremental speedup %.2fx below the 2x acceptance "
                 "bar\n",
                 aggregate_speedup);
    status = 1;
  }
  if (!annealing_incremental) {
    std::fprintf(stderr,
                 "FAIL: annealing-shaped txn probe lost its win "
                 "(bit-identical %s, rigid %.2fx vs the 2x bar, sized "
                 "%.2fx vs the 1.4x bar)\n",
                 txn_identical ? "yes" : "NO", txn_speedup_rigid,
                 txn_speedup_sized);
    status = 1;
  }

  const auto total_end = std::chrono::steady_clock::now();
  const double total_ms =
      std::chrono::duration<double, std::milli>(total_end - total_start)
          .count();

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"floorplan\",\n"
                 "  \"wall_ms\": %.3f,\n"
                 "  \"swap_steps\": %d,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"incremental_2x\": %s,\n"
                 "  \"aggregate_speedup\": %.3f,\n"
                 "  \"annealing_incremental\": %s,\n"
                 "  \"annealing_txn_speedup_rigid\": %.3f,\n"
                 "  \"annealing_txn_speedup_sized\": %.3f,\n",
                 total_ms, kSwapSteps, all_identical ? "true" : "false",
                 incremental_2x ? "true" : "false", aggregate_speedup,
                 annealing_incremental ? "true" : "false", txn_speedup_rigid,
                 txn_speedup_sized);
    std::fprintf(out, "  \"txn_probe\": [\n");
    for (std::size_t i = 0; i < txn_rows.size(); ++i) {
      const auto& row = txn_rows[i];
      std::fprintf(out,
                   "    {\"run\": \"%s\", \"from_scratch_ms\": %.3f, "
                   "\"incremental_ms\": %.3f, \"speedup\": %.3f, "
                   "\"bit_identical\": %s}%s\n",
                   row.key.c_str(), row.from_scratch_ms, row.incremental_ms,
                   row.speedup(), row.bit_identical ? "true" : "false",
                   i + 1 < txn_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"swap_probe\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      std::fprintf(out,
                   "    {\"run\": \"%s\", \"from_scratch_ms\": %.3f, "
                   "\"incremental_ms\": %.3f, \"speedup\": %.3f, "
                   "\"bit_identical\": %s}%s\n",
                   row.key.c_str(), row.from_scratch_ms, row.incremental_ms,
                   row.speedup(), row.bit_identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    // Only the incremental legs are gated sub-benchmarks: the from-scratch
    // legs are the deliberately slow reference path (their absolute time
    // shifts with runner generations, and a slowdown there would only make
    // the session look better); they stay in swap_probe for information.
    std::fprintf(out, "  ],\n  \"sub_benchmarks\": {\n");
    const std::size_t total_subs = rows.size() + txn_rows.size();
    std::size_t emitted = 0;
    for (const auto& row : rows) {
      std::fprintf(out, "    \"%s_incremental\": %.3f%s\n", row.key.c_str(),
                   row.incremental_ms, ++emitted < total_subs ? "," : "");
    }
    for (const auto& row : txn_rows) {
      std::fprintf(out, "    \"%s_txn\": %.3f%s\n", row.key.c_str(),
                   row.incremental_ms, ++emitted < total_subs ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (status != 0) return status;
  return sunmap::bench::run_benchmarks(argc, argv);
}
