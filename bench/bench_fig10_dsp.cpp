// Experiment FIG10 — reproduces §6.4: the six-core DSP filter application.
// (b) SUNMAP maps it onto a butterfly and the floorplan is printed (ASCII
//     rendition of Fig 10(b)).
// (c) The mapped design on every topology is simulated cycle-accurately
//     with trace-driven traffic at the core-graph rates; the butterfly has
//     the minimum average packet latency, "validating the output of
//     SUNMAP".
// The DSP flows reach 600 MB/s, so its link budget is 1 GB/s (the 500 MB/s
// cap of §6.1 belongs to the video experiments).

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "core/sunmap.h"
#include "fplan/render.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace {

using namespace sunmap;

core::SunmapConfig dsp_config() {
  core::SunmapConfig config;
  config.mapper = bench::video_config();
  config.mapper.link_bandwidth_mbps = 1000.0;
  return config;
}

route::RoutingKind sim_routing(const topo::Topology& topology) {
  return topology.kind() == topo::TopologyKind::kClos
             ? route::RoutingKind::kSplitMin
             : route::RoutingKind::kDimensionOrdered;
}

void print_selection_and_floorplan() {
  const auto app = apps::dsp_filter();
  core::Sunmap tool(dsp_config());
  const auto result = tool.run(app);

  bench::print_heading("Fig 10: DSP filter selection (paper: butterfly)");
  std::printf("%s", core::Sunmap::report_table(result.report).c_str());

  if (const auto* best = result.best()) {
    bench::print_heading("Fig 10(b): floorplan of the selected " +
                         best->topology->name());
    const auto& fp = best->result.eval.floorplan;
    const auto& slot_to_core = best->result.slot_to_core;
    std::printf("%s", fplan::render_ascii(
                          fp,
                          [&](const fplan::PlacedBlock& block) {
                            if (block.kind ==
                                fplan::PlacedBlock::Kind::kSwitch) {
                              return "S" + std::to_string(block.index);
                            }
                            const int core = slot_to_core[
                                static_cast<std::size_t>(block.index)];
                            return core >= 0 ? app.core(core).name
                                             : std::string("-");
                          })
                          .c_str());
    std::printf("chip: %.2f x %.2f mm (%.2f mm2)\n", fp.width_mm(),
                fp.height_mm(), fp.area_mm2());
  }
}

void print_simulated_latencies() {
  bench::print_heading(
      "Fig 10(c): simulated avg packet latency per topology, trace-driven "
      "DSP traffic (paper: butterfly minimum)");
  const auto app = apps::dsp_filter();
  const auto library = topo::standard_library(app.num_cores());
  auto mapper_config = dsp_config().mapper;

  util::Table table({"topology", "avg latency (cy)", "max (cy)",
                     "saturated"});
  for (const auto& topology : library) {
    mapping::Mapper mapper(mapper_config);
    const auto mapped = mapper.map(app, *topology);

    // Trace-driven flows at slots chosen by the mapping.
    std::vector<sim::TrafficFlow> flows;
    for (const auto& e : app.graph().edges()) {
      flows.push_back(sim::TrafficFlow{
          mapped.core_to_slot[static_cast<std::size_t>(e.src)],
          mapped.core_to_slot[static_cast<std::size_t>(e.dst)], e.weight});
    }
    // Moderate load: distance, not contention, should dominate, as in the
    // paper's functional SystemC runs.
    sim::TraceTraffic traffic(flows, 4, /*flits_per_cycle_per_gbps=*/0.1);

    const auto routes =
        sim::RouteTable::all_pairs(*topology, sim_routing(*topology));
    sim::SimConfig config;
    config.warmup_cycles = 1500;
    config.measure_cycles = 8000;
    config.drain_cycles = 20000;
    config.seed = 11;
    config.distance_class_vcs = true;
    sim::Simulator simulator(*topology, routes, config);
    const auto stats = simulator.run(traffic);
    table.add_row({topology->name(),
                   util::Table::num(stats.avg_latency_cycles, 1),
                   util::Table::num(stats.max_latency_cycles, 0),
                   stats.saturated ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());
}

void BM_DspEndToEnd(benchmark::State& state) {
  const auto app = apps::dsp_filter();
  core::Sunmap tool(dsp_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tool.run(app));
  }
}
BENCHMARK(BM_DspEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_selection_and_floorplan();
  print_simulated_latencies();
  return sunmap::bench::run_benchmarks(argc, argv);
}
