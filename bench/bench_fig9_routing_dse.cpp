// Experiment FIG9 — reproduces §6.3's design-space exploration of a chosen
// topology (MPEG4 on a mesh).
// (a) Minimum link bandwidth required by each routing function DO / MP /
//     SM / SA: the single-path functions are pinned at >= 910 MB/s by the
//     largest SDRAM flow, so "when maximum available link bandwidth is
//     500 MB/s, only split-traffic routing can be used".
// (b) The area-power Pareto points of the mapping space explored by the
//     pairwise-swap search.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "select/selector.h"
#include "topo/library.h"
#include "util/table.h"

namespace {

using namespace sunmap;

void print_routing_bandwidth() {
  bench::print_heading(
      "Fig 9(a): minimum link bandwidth per routing function, MPEG4 on mesh "
      "(paper: only split-traffic routing fits under the 500 MB/s line)");
  const auto app = apps::mpeg4();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  util::Table table({"routing", "min BW (MB/s)", "feasible @ 500",
                     "avg hops"});
  for (route::RoutingKind kind : route::kAllRoutingKinds) {
    auto config = bench::video_config();
    config.routing = kind;
    mapping::Mapper mapper(config);
    const auto result = mapper.map(app, *mesh);
    table.add_row({route::to_string(kind),
                   util::Table::num(result.eval.max_link_load_mbps, 1),
                   result.eval.max_link_load_mbps <= 500.0 ? "yes" : "no",
                   util::Table::num(result.eval.avg_switch_hops)});
  }
  std::printf("%s", table.to_string().c_str());
}

void print_pareto() {
  bench::print_heading(
      "Fig 9(b): area-power Pareto points of the MPEG4 mesh mapping space");
  const auto app = apps::mpeg4();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  auto config = bench::video_config();
  config.routing = route::RoutingKind::kSplitAll;
  config.collect_explored = true;
  config.swap_passes = 3;
  mapping::Mapper mapper(config);
  const auto result = mapper.map(app, *mesh);
  const auto frontier = select::pareto_frontier(result.explored_area_power);
  std::printf("explored %d mappings, %zu Pareto points:\n",
              result.evaluated_mappings, frontier.size());
  util::Table table({"area (mm2)", "power (mW)"});
  for (const auto& point : frontier) {
    table.add_row({util::Table::num(point.area_mm2),
                   util::Table::num(point.power_mw, 1)});
  }
  std::printf("%s", table.to_string().c_str());
}

void BM_MapMpeg4PerRouting(benchmark::State& state) {
  const auto app = apps::mpeg4();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  auto config = bench::video_config();
  config.routing = route::kAllRoutingKinds[state.range(0)];
  mapping::Mapper mapper(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(app, *mesh));
  }
  state.SetLabel(route::to_string(config.routing));
}
BENCHMARK(BM_MapMpeg4PerRouting)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_routing_bandwidth();
  print_pareto();
  return sunmap::bench::run_benchmarks(argc, argv);
}
