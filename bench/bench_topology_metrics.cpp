// Analytic topology characterisation backing the paper's structural
// arguments: hop counts (Fig 6(a)), resource counts (Fig 6(b)), and the
// path-diversity story ("butterfly ... trades-off path diversity", "clos
// networks have maximum path diversity", §6.1/§6.2). No application or
// traffic involved — these numbers depend on the topology alone.

#include "bench/bench_util.h"
#include "topo/library.h"
#include "topo/metrics.h"
#include "util/table.h"

namespace {

using namespace sunmap;

void print_metrics(int cores) {
  bench::print_heading("Topology metrics for " + std::to_string(cores) +
                       " cores");
  util::Table table({"topology", "switches", "links", "slots", "diameter",
                     "avg hops", "diversity min/avg/max", "total radix",
                     "capacity (flits/slot)"});
  const auto library = topo::standard_library(cores,
                                              /*include_extensions=*/true);
  for (const auto& topology : library) {
    const auto m = topo::compute_metrics(*topology);
    table.add_row(
        {topology->name(), std::to_string(m.num_switches),
         std::to_string(m.num_network_links), std::to_string(m.num_slots),
         std::to_string(m.diameter_switch_hops),
         util::Table::num(m.avg_switch_hops),
         std::to_string(m.min_path_diversity) + "/" +
             util::Table::num(m.avg_path_diversity, 1) + "/" +
             std::to_string(m.max_path_diversity),
         std::to_string(m.total_switch_radix),
         util::Table::num(m.uniform_capacity_flits_per_slot)});
  }
  std::printf("%s", table.to_string().c_str());
}

void BM_ComputeMetrics(benchmark::State& state) {
  const auto mesh = topo::make_mesh_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::compute_metrics(*mesh));
  }
  state.SetLabel(mesh->name());
}
BENCHMARK(BM_ComputeMetrics)->Arg(16)->Arg(36)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_metrics(8);
  print_metrics(16);
  return sunmap::bench::run_benchmarks(argc, argv);
}
