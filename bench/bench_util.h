#pragma once

// Shared helpers for the benchmark harnesses. Each bench binary regenerates
// one of the paper's tables/figures (printed before the google-benchmark
// timers run) — see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "mapping/mapper.h"

namespace sunmap::bench {

inline void print_heading(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
}

/// The experimental setup of §6.1: minimum-path routing, minimise delay,
/// 500 MB/s links ("The maximum link bandwidth for the NoCs is
/// conservatively assumed to be 500 MB/s").
inline mapping::MapperConfig video_config() {
  mapping::MapperConfig config;
  config.routing = route::RoutingKind::kMinPath;
  config.objective = mapping::Objective::kMinDelay;
  config.link_bandwidth_mbps = 500.0;
  return config;
}

/// Runs the registered google-benchmark timers after the tables printed.
inline int run_benchmarks(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace sunmap::bench
