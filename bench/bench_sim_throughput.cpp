// Experiment ABL-SIM — simulator validation and performance:
//  * zero-load latency table (must match the analytic pipeline model
//    F + (S-1)*L, the same check the unit tests pin down);
//  * simulated flits/second per topology — the throughput of the
//    cycle-accurate model that stands in for the paper's SystemC runs.

#include "bench/bench_util.h"
#include "sim/simulator.h"
#include "topo/library.h"
#include "util/table.h"

namespace {

using namespace sunmap;

void print_zero_load_table() {
  bench::print_heading(
      "Zero-load latency vs analytic model (4-flit packets, 1-cycle links)");
  util::Table table({"topology", "pair", "switches", "analytic (cy)",
                     "simulated (cy)"});
  const auto library = topo::standard_library(16);
  for (const auto& topology : library) {
    const auto routes = sim::RouteTable::all_pairs(
        *topology, route::RoutingKind::kDimensionOrdered);
    const int src = 0;
    const int dst = topology->num_slots() - 1;
    const int switches = topology->min_switch_hops(src, dst);
    sim::SimConfig config;
    config.warmup_cycles = 200;
    config.measure_cycles = 4000;
    config.drain_cycles = 4000;
    sim::TraceTraffic traffic({{src, dst, 20.0}}, 4, 0.1);
    sim::Simulator simulator(*topology, routes, config);
    const auto stats = simulator.run(traffic);
    table.add_row({topology->name(),
                   std::to_string(src) + "->" + std::to_string(dst),
                   std::to_string(switches),
                   util::Table::num(4.0 + (switches - 1), 0),
                   util::Table::num(stats.avg_latency_cycles, 2)});
  }
  std::printf("%s", table.to_string().c_str());
}

void BM_SimulatorFlitThroughput(benchmark::State& state) {
  auto library = topo::standard_library(16);
  const auto& topology = *library[static_cast<std::size_t>(state.range(0))];
  const auto routes = sim::RouteTable::all_pairs(
      topology, route::RoutingKind::kDimensionOrdered);
  sim::SimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 5000;
  config.drain_cycles = 10000;
  std::uint64_t flits = 0;
  for (auto _ : state) {
    const auto stats = sim::simulate_pattern(topology, routes,
                                             sim::Pattern::kUniform, 0.15,
                                             config);
    benchmark::DoNotOptimize(stats);
    flits += static_cast<std::uint64_t>(
        stats.throughput_flits_per_cycle_per_slot * 16.0 *
        static_cast<double>(stats.cycles));
  }
  state.counters["flits/s"] = benchmark::Counter(
      static_cast<double>(flits), benchmark::Counter::kIsRate);
  state.SetLabel(topology.name());
}
BENCHMARK(BM_SimulatorFlitThroughput)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

void BM_RouteTableAllPairs(benchmark::State& state) {
  const auto mesh = topo::make_mesh_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::RouteTable::all_pairs(*mesh, route::RoutingKind::kSplitMin));
  }
  state.SetLabel(mesh->name());
}
BENCHMARK(BM_RouteTableAllPairs)
    ->Arg(16)
    ->Arg(36)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_zero_load_table();
  return sunmap::bench::run_benchmarks(argc, argv);
}
