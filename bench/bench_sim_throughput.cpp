// Cross-PR simulation perf probe: event-driven vs cycle-stepped engine.
//
// Three sections:
//  * zero-load latency table (must match the analytic pipeline model
//    F + (S-1)*L, the same check the unit tests pin down);
//  * engine probe — the same (topology, routing, traffic) leg run by both
//    engines. Every leg gates bit-identity over the FULL SimStats record
//    (the engines share the router model; only how time advances differs),
//    and reports events/sec (granted flit traversals per wall second) and
//    simulated-cycles/sec for each engine. The event engine's win is
//    structural at light load — quiescent cycles cost one traffic poll
//    instead of a full router sweep — so the >=3x acceptance bar aggregates
//    over the light-load (rate 0.02 and sparse-trace) legs; the moderate
//    and saturated legs, where most routers hold flits every cycle and the
//    armed set approaches "all of them", are reported informationally.
//  * model validation — the SimEvaluator finalist tier run on the paper's
//    figure workloads: each app's selected topology simulated under its own
//    trace, analytical zero-load delay vs contention-aware simulated delay.
//
// `--json[=path]` dumps BENCH_sim.json. Gated invariants: sim_bit_identical
// (every engine-probe leg), sim_event_3x (time-weighted aggregate event
// speedup over the gated light-load legs >= 3x), sim_hot_path_1p3x (the
// storage-overhauled event engine >= 1.3x the in-binary frozen pre-overhaul
// BaselineSimulator, bit-identical on every leg), and
// finalist_parallel_identical (the parallel finalist tier merges
// bit-identically at every thread count; >= 1.7x at 2 workers gated on
// multi-core machines, informational on single-core runners).

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "mapping/sim_eval.h"
#include "select/explorer.h"
#include "select/selector.h"
#include "sim/baseline_sim.h"
#include "sim/simulator.h"
#include "topo/library.h"
#include "util/table.h"

#include <chrono>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace {

using namespace sunmap;

constexpr int kTimingRounds = 3;

void print_zero_load_table() {
  bench::print_heading(
      "Zero-load latency vs analytic model (4-flit packets, 1-cycle links)");
  util::Table table({"topology", "pair", "switches", "analytic (cy)",
                     "simulated (cy)"});
  const auto library = topo::standard_library(16);
  for (const auto& topology : library) {
    const auto routes = sim::RouteTable::all_pairs(
        *topology, route::RoutingKind::kDimensionOrdered);
    const int src = 0;
    const int dst = topology->num_slots() - 1;
    const int switches = topology->min_switch_hops(src, dst);
    sim::SimConfig config;
    config.warmup_cycles = 200;
    config.measure_cycles = 4000;
    config.drain_cycles = 4000;
    sim::TraceTraffic traffic({{src, dst, 20.0}}, 4, 0.1);
    sim::Simulator simulator(*topology, routes, config);
    const auto stats = simulator.run(traffic);
    table.add_row({topology->name(),
                   std::to_string(src) + "->" + std::to_string(dst),
                   std::to_string(switches),
                   util::Table::num(4.0 + (switches - 1), 0),
                   util::Table::num(stats.avg_latency_cycles, 2)});
  }
  std::printf("%s", table.to_string().c_str());
}

// ---- Engine probe: event-driven vs cycle-stepped, bit-identity gated. ----

struct Workloads {
  std::unique_ptr<topo::Topology> mesh16 = topo::make_mesh_for(16);
  std::unique_ptr<topo::Topology> torus16 = topo::make_torus_for(16);
  std::unique_ptr<topo::Topology> clos16 = topo::make_clos_for(16);
  std::unique_ptr<topo::Topology> mesh64 = topo::make_mesh_for(64);
};

struct EngineLeg {
  std::string key;
  const topo::Topology* topology = nullptr;
  route::RoutingKind kind = route::RoutingKind::kDimensionOrdered;
  bool gated_3x = false;  ///< leg participates in the 3x aggregate
  /// Fresh traffic per run: BurstyTraffic carries burst state across runs,
  /// so every timed or checked run gets its own instance.
  std::function<std::unique_ptr<sim::TrafficModel>(int num_slots)> traffic;
  sim::SimConfig config;  ///< engine field is overwritten per side
};

std::unique_ptr<sim::TrafficModel> uniform(int slots, double rate) {
  return std::make_unique<sim::PatternTraffic>(slots, sim::Pattern::kUniform,
                                               rate, 4);
}

std::vector<EngineLeg> make_engine_legs(const Workloads& w) {
  using K = route::RoutingKind;
  sim::SimConfig base;
  base.warmup_cycles = 300;
  base.measure_cycles = 3000;
  base.drain_cycles = 6000;
  base.distance_class_vcs = true;

  std::vector<EngineLeg> legs;
  const auto add = [&](std::string key, const topo::Topology* topology,
                       K kind, bool gated, double rate) {
    EngineLeg leg;
    leg.key = std::move(key);
    leg.topology = topology;
    leg.kind = kind;
    leg.gated_3x = gated;
    leg.traffic = [rate](int slots) { return uniform(slots, rate); };
    leg.config = base;
    legs.push_back(std::move(leg));
  };
  // Light load (rate 0.02): the quiescence-dominated regime the event
  // engine exists for — the gated >=3x aggregate.
  add("mesh16_u002", w.mesh16.get(), K::kDimensionOrdered, true, 0.02);
  add("torus16_u002", w.torus16.get(), K::kDimensionOrdered, true, 0.02);
  add("clos16_u002", w.clos16.get(), K::kMinPath, true, 0.02);
  add("mesh64_u002", w.mesh64.get(), K::kDimensionOrdered, true, 0.02);
  // Sparse trace (a handful of active flows, most routers idle): also
  // gated — this is the shape the explorer's finalist tier simulates.
  {
    EngineLeg leg;
    leg.key = "mesh16_trace";
    leg.topology = w.mesh16.get();
    leg.kind = K::kMinPath;
    leg.gated_3x = true;
    leg.traffic = [](int) {
      return std::make_unique<sim::TraceTraffic>(
          std::vector<sim::TrafficFlow>{
              {0, 15, 10.0}, {5, 10, 6.0}, {3, 12, 4.0}, {9, 6, 2.0}},
          4, 0.02);
    };
    leg.config = base;
    legs.push_back(std::move(leg));
  }
  // Moderate and heavy load: informational timing, identity still gated.
  add("mesh16_u005", w.mesh16.get(), K::kDimensionOrdered, false, 0.05);
  add("mesh64_u005", w.mesh64.get(), K::kDimensionOrdered, false, 0.05);
  add("mesh16_u015", w.mesh16.get(), K::kDimensionOrdered, false, 0.15);
  add("mesh64_u015", w.mesh64.get(), K::kDimensionOrdered, false, 0.15);
  // Bursty traffic: quiescent gaps between bursts even at a meaningful
  // burst rate — the event engine's skip logic under irregular load.
  {
    EngineLeg leg;
    leg.key = "mesh16_bursty";
    leg.topology = w.mesh16.get();
    leg.kind = K::kDimensionOrdered;
    leg.gated_3x = false;
    leg.traffic = [](int slots) {
      return std::make_unique<sim::BurstyTraffic>(
          slots, sim::Pattern::kUniform, 0.3, 4, 30.0, 0.3);
    };
    leg.config = base;
    legs.push_back(std::move(leg));
  }
  // Verdict paths: the engines must agree on HOW pathological runs end,
  // not just on healthy statistics. Single-VC wormhole deadlock (stall
  // verdict) and past-saturation bit-complement (throughput collapse).
  {
    EngineLeg leg;
    leg.key = "mesh16_deadlock";
    leg.topology = w.mesh16.get();
    leg.kind = K::kSplitAll;
    leg.gated_3x = false;
    leg.traffic = [](int slots) {
      return std::make_unique<sim::PatternTraffic>(
          slots, sim::Pattern::kBitComplement, 0.5, 4);
    };
    leg.config = base;
    leg.config.distance_class_vcs = false;
    leg.config.stall_limit_cycles = 300;
    legs.push_back(std::move(leg));
  }
  {
    EngineLeg leg;
    leg.key = "mesh16_saturated";
    leg.topology = w.mesh16.get();
    leg.kind = K::kDimensionOrdered;
    leg.gated_3x = false;
    leg.traffic = [](int slots) {
      return std::make_unique<sim::PatternTraffic>(
          slots, sim::Pattern::kBitComplement, 0.8, 4);
    };
    leg.config = base;
    leg.config.drain_cycles = 3000;
    legs.push_back(std::move(leg));
  }
  return legs;
}

bool stats_identical(const sim::SimStats& a, const sim::SimStats& b) {
  return a.cycles == b.cycles && a.packets_generated == b.packets_generated &&
         a.packets_delivered == b.packets_delivered &&
         a.avg_latency_cycles == b.avg_latency_cycles &&
         a.max_latency_cycles == b.max_latency_cycles &&
         a.p50_latency_cycles == b.p50_latency_cycles &&
         a.p95_latency_cycles == b.p95_latency_cycles &&
         a.p99_latency_cycles == b.p99_latency_cycles &&
         a.throughput_flits_per_cycle_per_slot ==
             b.throughput_flits_per_cycle_per_slot &&
         a.offered_flits_per_cycle_per_slot ==
             b.offered_flits_per_cycle_per_slot &&
         a.saturated == b.saturated && a.status == b.status &&
         a.stalled_cycles == b.stalled_cycles &&
         a.undelivered_packets == b.undelivered_packets &&
         a.flit_events == b.flit_events;
}

struct EngineRow {
  std::string key;
  double event_ms = 0.0;
  double cycle_ms = 0.0;
  bool bit_identical = false;
  bool gated_3x = false;
  std::uint64_t flit_events = 0;
  std::uint64_t sim_cycles = 0;
  sim::RunStatus status = sim::RunStatus::kDrained;

  [[nodiscard]] double speedup() const {
    return event_ms > 0.0 ? cycle_ms / event_ms : 0.0;
  }
  [[nodiscard]] double events_per_sec(double ms) const {
    return ms > 0.0 ? static_cast<double>(flit_events) / (ms / 1000.0) : 0.0;
  }
  [[nodiscard]] double cycles_per_sec(double ms) const {
    return ms > 0.0 ? static_cast<double>(sim_cycles) / (ms / 1000.0) : 0.0;
  }
};

EngineRow run_engine_leg(const EngineLeg& leg) {
  const int num_slots = leg.topology->num_slots();
  const auto routes = sim::RouteTable::all_pairs(*leg.topology, leg.kind);
  const auto layout = sim::make_network_layout(*leg.topology);
  auto event_config = leg.config;
  event_config.engine = sim::SimEngine::kEventDriven;
  auto cycle_config = leg.config;
  cycle_config.engine = sim::SimEngine::kCycleStepped;
  sim::Simulator event_sim(*leg.topology, routes, event_config, layout);
  sim::Simulator cycle_sim(*leg.topology, routes, cycle_config, layout);

  EngineRow row;
  row.key = leg.key;
  row.gated_3x = leg.gated_3x;

  // Bit-identity over the FULL statistics record (untimed).
  {
    const auto event_traffic = leg.traffic(num_slots);
    const auto event_stats = event_sim.run(*event_traffic);
    const auto cycle_traffic = leg.traffic(num_slots);
    const auto cycle_stats = cycle_sim.run(*cycle_traffic);
    row.bit_identical = stats_identical(event_stats, cycle_stats);
    row.flit_events = event_stats.flit_events;
    row.sim_cycles = event_stats.cycles;
    row.status = event_stats.status;
  }

  // Timing, best of kTimingRounds per engine, fresh traffic per run.
  row.event_ms = std::numeric_limits<double>::infinity();
  row.cycle_ms = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kTimingRounds; ++round) {
    {
      const auto traffic = leg.traffic(num_slots);
      const auto t0 = std::chrono::steady_clock::now();
      const auto stats = event_sim.run(*traffic);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(stats);
      row.event_ms = std::min(
          row.event_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    {
      const auto traffic = leg.traffic(num_slots);
      const auto t0 = std::chrono::steady_clock::now();
      const auto stats = cycle_sim.run(*traffic);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(stats);
      row.cycle_ms = std::min(
          row.cycle_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  return row;
}

// ---- Hot-path probe: the overhauled engine vs the frozen PR baseline. ----

struct HotPathRow {
  std::string key;
  double baseline_ms = 0.0;
  double current_ms = 0.0;
  bool bit_identical = false;

  [[nodiscard]] double speedup() const {
    return current_ms > 0.0 ? baseline_ms / current_ms : 0.0;
  }
};

/// Runs one engine-probe leg on the event engine under both the current
/// Simulator (pooled events, SoA flit storage) and the frozen pre-overhaul
/// BaselineSimulator retained in-binary as the machine-independent perf
/// reference. The statistics must match bit for bit — the overhaul changed
/// storage, never behavior — and the aggregate speedup gates the >= 1.3x
/// acceptance bar.
HotPathRow run_hot_path_leg(const EngineLeg& leg) {
  const int num_slots = leg.topology->num_slots();
  const auto routes = sim::RouteTable::all_pairs(*leg.topology, leg.kind);
  const auto layout = sim::make_network_layout(*leg.topology);
  auto config = leg.config;
  config.engine = sim::SimEngine::kEventDriven;
  sim::Simulator current(*leg.topology, routes, config, layout);
  sim::BaselineSimulator baseline(*leg.topology, routes, config, layout);

  HotPathRow row;
  row.key = leg.key;
  {
    const auto current_traffic = leg.traffic(num_slots);
    const auto current_stats = current.run(*current_traffic);
    const auto baseline_traffic = leg.traffic(num_slots);
    const auto baseline_stats = baseline.run(*baseline_traffic);
    row.bit_identical = stats_identical(current_stats, baseline_stats);
  }
  row.baseline_ms = std::numeric_limits<double>::infinity();
  row.current_ms = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kTimingRounds; ++round) {
    {
      const auto traffic = leg.traffic(num_slots);
      const auto t0 = std::chrono::steady_clock::now();
      const auto stats = current.run(*traffic);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(stats);
      row.current_ms = std::min(
          row.current_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    {
      const auto traffic = leg.traffic(num_slots);
      const auto t0 = std::chrono::steady_clock::now();
      const auto stats = baseline.run(*traffic);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(stats);
      row.baseline_ms = std::min(
          row.baseline_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  return row;
}

// ---- Parallel finalist tier: thread scaling, bit-identity gated. ---------

struct FinalistScaling {
  std::size_t cells = 0;
  std::vector<int> threads;
  std::vector<double> ms;
  bool identical = true;

  [[nodiscard]] double speedup_at(int want) const {
    for (std::size_t i = 0; i < threads.size(); ++i) {
      if (threads[i] == want && ms[i] > 0.0) return ms[0] / ms[i];
    }
    return 0.0;
  }
};

/// Times simulate_finalists() on a prepared (sim-off) exploration report at
/// 1/2/4 worker threads and verifies every SimScore merges bit-identically
/// regardless of thread count.
FinalistScaling run_finalist_scaling() {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  select::ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.objectives = {mapping::Objective::kMinDelay,
                        mapping::Objective::kMinPower};
  request.routings = {route::RoutingKind::kDimensionOrdered,
                      route::RoutingKind::kMinPath};
  request.link_bandwidths_mbps = {500.0, 1000.0};
  select::DesignSpaceExplorer explorer;
  const auto base = explorer.explore(request);
  request.sim_finalists = 6;

  FinalistScaling scaling;
  std::vector<select::ExplorationReport> scored;
  for (const int threads : {1, 2, 4}) {
    request.num_threads = threads;
    double best_ms = std::numeric_limits<double>::infinity();
    for (int round = 0; round < kTimingRounds; ++round) {
      auto report = base;
      const auto t0 = std::chrono::steady_clock::now();
      select::simulate_finalists(request, report);
      const auto t1 = std::chrono::steady_clock::now();
      best_ms = std::min(
          best_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (round + 1 == kTimingRounds) scored.push_back(std::move(report));
    }
    scaling.threads.push_back(threads);
    scaling.ms.push_back(best_ms);
  }

  const auto& reference = scored.front();
  for (const auto& result : reference.results) {
    for (const auto& candidate : result.selection.candidates) {
      if (candidate.sim.has_value()) ++scaling.cells;
    }
  }
  for (const auto& report : scored) {
    for (std::size_t p = 0; p < reference.results.size(); ++p) {
      const auto& ref = reference.results[p].selection.candidates;
      const auto& got = report.results[p].selection.candidates;
      for (std::size_t t = 0; t < ref.size(); ++t) {
        if (ref[t].sim.has_value() != got[t].sim.has_value()) {
          scaling.identical = false;
          continue;
        }
        if (!ref[t].sim.has_value()) continue;
        scaling.identical =
            scaling.identical &&
            stats_identical(ref[t].sim->stats, got[t].sim->stats) &&
            ref[t].sim->analytical_latency_cycles ==
                got[t].sim->analytical_latency_cycles;
      }
    }
  }
  return scaling;
}

// ---- Model validation: SimEvaluator on the figure workloads. -------------

struct ValidationRow {
  std::string key;
  std::string topology;
  double analytical_cycles = 0.0;
  double simulated_cycles = 0.0;
  double model_error = 0.0;
  sim::RunStatus status = sim::RunStatus::kDrained;
};

std::vector<ValidationRow> run_model_validation() {
  struct Figure {
    const char* key;
    mapping::CoreGraph app;
    mapping::MapperConfig config;
  };
  // Paper-matched constraints: the video apps run at 500 MB/s links (mpeg4
  // only fits with traffic splitting), the DSP filter's 600 MB/s FFT flows
  // need 1 GB/s links.
  std::vector<Figure> figures;
  figures.push_back({"vopd", apps::vopd(), {}});
  {
    mapping::MapperConfig config;
    config.routing = route::RoutingKind::kSplitAll;
    figures.push_back({"mpeg4", apps::mpeg4(), config});
  }
  {
    mapping::MapperConfig config;
    config.link_bandwidth_mbps = 1000.0;
    figures.push_back({"dsp", apps::dsp_filter(), config});
  }

  std::vector<ValidationRow> rows;
  for (auto& figure : figures) {
    const auto library = topo::standard_library(figure.app.num_cores());
    select::TopologySelector selector(figure.config);
    const auto report = selector.select(figure.app, library);
    const auto* best = report.best();
    if (best == nullptr) continue;
    mapping::SimEvaluator evaluator;
    const auto score =
        evaluator.score(figure.app, *best->topology, best->result);
    ValidationRow row;
    row.key = figure.key;
    row.topology = best->topology->name();
    row.analytical_cycles = score.analytical_latency_cycles;
    row.simulated_cycles = score.simulated_latency_cycles;
    row.model_error = score.model_error();
    row.status = score.stats.status;
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---- Micro-benchmarks. ---------------------------------------------------

void BM_SimulatorFlitThroughput(benchmark::State& state) {
  auto library = topo::standard_library(16);
  const auto& topology = *library[static_cast<std::size_t>(state.range(0))];
  const auto routes = sim::RouteTable::all_pairs(
      topology, route::RoutingKind::kDimensionOrdered);
  sim::SimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 5000;
  config.drain_cycles = 10000;
  std::uint64_t flits = 0;
  for (auto _ : state) {
    const auto stats = sim::simulate_pattern(topology, routes,
                                             sim::Pattern::kUniform, 0.15,
                                             config);
    benchmark::DoNotOptimize(stats);
    flits += stats.flit_events;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(flits), benchmark::Counter::kIsRate);
  state.SetLabel(topology.name());
}
BENCHMARK(BM_SimulatorFlitThroughput)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

void BM_RouteTableAllPairs(benchmark::State& state) {
  const auto mesh = topo::make_mesh_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::RouteTable::all_pairs(*mesh, route::RoutingKind::kSplitMin));
  }
  state.SetLabel(mesh->name());
}
BENCHMARK(BM_RouteTableAllPairs)
    ->Arg(16)
    ->Arg(36)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --json[=path] flag before google-benchmark sees the
  // arguments.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_sim.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  argc = kept;

  const auto total_start = std::chrono::steady_clock::now();

  print_zero_load_table();

  bench::print_heading(
      "Engine probe: event-driven vs cycle-stepped (full-record bit-identity "
      "gated on every leg; >=3x aggregate gated on the light-load legs)");
  const Workloads workloads;
  std::vector<EngineRow> engine_rows;
  util::Table engine_table({"leg", "cycle ms", "event ms", "speedup",
                            "Mev/s event", "Mev/s cycle", "status", "gated",
                            "bit-identical"});
  bool all_identical = true;
  double gated_cycle_ms = 0.0;
  double gated_event_ms = 0.0;
  for (const auto& leg : make_engine_legs(workloads)) {
    auto row = run_engine_leg(leg);
    all_identical = all_identical && row.bit_identical;
    if (row.gated_3x) {
      gated_cycle_ms += row.cycle_ms;
      gated_event_ms += row.event_ms;
    }
    engine_table.add_row(
        {row.key, util::Table::num(row.cycle_ms, 2),
         util::Table::num(row.event_ms, 2),
         util::Table::num(row.speedup(), 2) + "x",
         util::Table::num(row.events_per_sec(row.event_ms) / 1e6, 2),
         util::Table::num(row.events_per_sec(row.cycle_ms) / 1e6, 2),
         sim::to_string(row.status), row.gated_3x ? "3x" : "-",
         row.bit_identical ? "yes" : "NO"});
    engine_rows.push_back(std::move(row));
  }
  const double light_load_speedup =
      gated_event_ms > 0.0 ? gated_cycle_ms / gated_event_ms : 0.0;
  std::printf("%sgated light-load aggregate: %.2fx event over cycle-stepped "
              "(bar: 3x)\n",
              engine_table.to_string().c_str(), light_load_speedup);

  bench::print_heading(
      "Hot-path probe: overhauled event engine vs frozen pre-overhaul "
      "baseline (bit-identity gated on every leg; >=1.3x aggregate gated)");
  std::vector<HotPathRow> hot_rows;
  util::Table hot_table({"leg", "baseline ms", "current ms", "speedup",
                         "bit-identical"});
  bool hot_identical = true;
  double hot_baseline_ms = 0.0;
  double hot_current_ms = 0.0;
  for (const auto& leg : make_engine_legs(workloads)) {
    auto row = run_hot_path_leg(leg);
    hot_identical = hot_identical && row.bit_identical;
    hot_baseline_ms += row.baseline_ms;
    hot_current_ms += row.current_ms;
    hot_table.add_row({row.key, util::Table::num(row.baseline_ms, 2),
                       util::Table::num(row.current_ms, 2),
                       util::Table::num(row.speedup(), 2) + "x",
                       row.bit_identical ? "yes" : "NO"});
    hot_rows.push_back(std::move(row));
  }
  const double hot_path_speedup =
      hot_current_ms > 0.0 ? hot_baseline_ms / hot_current_ms : 0.0;
  std::printf("%shot-path aggregate: %.2fx over the frozen baseline "
              "(bar: 1.3x)\n",
              hot_table.to_string().c_str(), hot_path_speedup);

  bench::print_heading(
      "Parallel finalist tier: simulate_finalists() thread scaling "
      "(bit-identical merge gated at every thread count)");
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const auto finalist = run_finalist_scaling();
  util::Table finalist_table({"threads", "ms", "speedup"});
  for (std::size_t i = 0; i < finalist.threads.size(); ++i) {
    finalist_table.add_row(
        {std::to_string(finalist.threads[i]),
         util::Table::num(finalist.ms[i], 2),
         util::Table::num(finalist.ms[0] / finalist.ms[i], 2) + "x"});
  }
  const double finalist_speedup_2t = finalist.speedup_at(2);
  std::printf("%s%zu finalist cells; merge bit-identical at every thread "
              "count: %s\n",
              finalist_table.to_string().c_str(), finalist.cells,
              finalist.identical ? "yes" : "NO");

  bench::print_heading(
      "Model validation: analytical zero-load delay vs simulated "
      "contention-aware delay on the figure workloads (SimEvaluator)");
  const auto validation_rows = run_model_validation();
  util::Table validation_table({"app", "topology", "analytical (cy)",
                                "simulated (cy)", "model err", "status"});
  for (const auto& row : validation_rows) {
    validation_table.add_row(
        {row.key, row.topology, util::Table::num(row.analytical_cycles, 2),
         util::Table::num(row.simulated_cycles, 2),
         util::Table::num(100.0 * row.model_error, 1) + "%",
         sim::to_string(row.status)});
  }
  std::printf("%s", validation_table.to_string().c_str());

  const bool event_3x = light_load_speedup >= 3.0;
  const bool hot_path_1p3x = hot_path_speedup >= 1.3;
  int status = 0;
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: event-driven engine diverged from the cycle-stepped "
                 "reference\n");
    status = 1;
  }
  if (!event_3x) {
    std::fprintf(stderr,
                 "FAIL: gated light-load event speedup %.2fx below the 3x "
                 "acceptance bar\n",
                 light_load_speedup);
    status = 1;
  }
  if (!hot_identical) {
    std::fprintf(stderr,
                 "FAIL: the overhauled event engine diverged from the frozen "
                 "pre-overhaul baseline\n");
    status = 1;
  }
  if (!hot_path_1p3x) {
    std::fprintf(stderr,
                 "FAIL: hot-path speedup %.2fx over the frozen baseline is "
                 "below the 1.3x acceptance bar\n",
                 hot_path_speedup);
    status = 1;
  }
  if (!finalist.identical) {
    std::fprintf(stderr,
                 "FAIL: the parallel finalist tier diverged from the "
                 "single-thread merge\n");
    status = 1;
  }
  if (hardware_threads >= 2 && finalist_speedup_2t < 1.7) {
    std::fprintf(stderr,
                 "FAIL: 2-worker finalist tier is only %.2fx the serial pass "
                 "on a %u-thread machine (need >= 1.7x)\n",
                 finalist_speedup_2t, hardware_threads);
    status = 1;
  }
  if (hardware_threads < 2) {
    std::printf(
        "note: %u hardware thread(s); the 2-worker >= 1.7x bar is "
        "informational here (%.2fx measured)\n",
        hardware_threads, finalist_speedup_2t);
  }

  const auto total_end = std::chrono::steady_clock::now();
  const double total_ms =
      std::chrono::duration<double, std::milli>(total_end - total_start)
          .count();

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"sim_throughput\",\n"
                 "  \"wall_ms\": %.3f,\n"
                 "  \"sim_bit_identical\": %s,\n"
                 "  \"sim_event_3x\": %s,\n"
                 "  \"event_speedup_light_load\": %.3f,\n"
                 "  \"sim_hot_path_1p3x\": %s,\n"
                 "  \"hot_path_speedup\": %.3f,\n"
                 "  \"finalist_parallel_identical\": %s,\n"
                 "  \"finalist_speedup_2t\": %.3f,\n"
                 "  \"finalist_cells\": %zu,\n"
                 "  \"hardware_threads\": %u,\n",
                 total_ms, all_identical ? "true" : "false",
                 event_3x ? "true" : "false", light_load_speedup,
                 hot_path_1p3x ? "true" : "false", hot_path_speedup,
                 finalist.identical ? "true" : "false", finalist_speedup_2t,
                 finalist.cells, hardware_threads);
    std::fprintf(out, "  \"hot_path_probe\": [\n");
    for (std::size_t i = 0; i < hot_rows.size(); ++i) {
      const auto& row = hot_rows[i];
      std::fprintf(out,
                   "    {\"run\": \"%s\", \"baseline_ms\": %.3f, "
                   "\"current_ms\": %.3f, \"speedup\": %.3f, "
                   "\"bit_identical\": %s}%s\n",
                   row.key.c_str(), row.baseline_ms, row.current_ms,
                   row.speedup(), row.bit_identical ? "true" : "false",
                   i + 1 < hot_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"finalist_scaling\": [\n");
    for (std::size_t i = 0; i < finalist.threads.size(); ++i) {
      std::fprintf(out,
                   "    {\"threads\": %d, \"ms\": %.3f, \"speedup\": %.3f}%s\n",
                   finalist.threads[i], finalist.ms[i],
                   finalist.ms[0] / finalist.ms[i],
                   i + 1 < finalist.threads.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"engine_probe\": [\n");
    for (std::size_t i = 0; i < engine_rows.size(); ++i) {
      const auto& row = engine_rows[i];
      std::fprintf(
          out,
          "    {\"run\": \"%s\", \"cycle_ms\": %.3f, \"event_ms\": %.3f, "
          "\"speedup\": %.3f, \"event_events_per_sec\": %.0f, "
          "\"cycle_events_per_sec\": %.0f, \"sim_cycles_per_sec\": %.0f, "
          "\"gated_3x\": %s, \"bit_identical\": %s}%s\n",
          row.key.c_str(), row.cycle_ms, row.event_ms, row.speedup(),
          row.events_per_sec(row.event_ms), row.events_per_sec(row.cycle_ms),
          row.cycles_per_sec(row.event_ms), row.gated_3x ? "true" : "false",
          row.bit_identical ? "true" : "false",
          i + 1 < engine_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"model_validation\": [\n");
    for (std::size_t i = 0; i < validation_rows.size(); ++i) {
      const auto& row = validation_rows[i];
      std::fprintf(out,
                   "    {\"run\": \"%s\", \"topology\": \"%s\", "
                   "\"analytical_cycles\": %.6f, \"simulated_cycles\": %.6f, "
                   "\"model_error\": %.6f, \"status\": \"%s\"}%s\n",
                   row.key.c_str(), row.topology.c_str(),
                   row.analytical_cycles, row.simulated_cycles,
                   row.model_error, sim::to_string(row.status),
                   i + 1 < validation_rows.size() ? "," : "");
    }
    // Only the event legs are tracked sub-benchmarks: the cycle-stepped
    // legs and the frozen BaselineSimulator are deliberately slower
    // reference engines. The finalist tier's per-thread timings ride along.
    std::fprintf(out, "  ],\n  \"sub_benchmarks\": {\n");
    for (const auto& row : engine_rows) {
      std::fprintf(out, "    \"%s_event\": %.3f,\n", row.key.c_str(),
                   row.event_ms);
    }
    for (std::size_t i = 0; i < finalist.threads.size(); ++i) {
      std::fprintf(out, "    \"finalist_%dt\": %.3f%s\n", finalist.threads[i],
                   finalist.ms[i],
                   i + 1 < finalist.threads.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (status != 0) return status;
  return sunmap::bench::run_benchmarks(argc, argv);
}
