// Experiment FIG6 — reproduces Fig 6(a-d): VOPD mapped onto every library
// topology under minimum-path routing. Four series: average hop delay
// (butterfly lowest at 2, clos at 3), switch/link resource counts
// (butterfly has the fewest switches but more links), design area and
// design power (butterfly wins both; §6.1 explains why: fewer, smaller
// switches and fewer hops outweigh its ~1.5x longer links).

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "select/selector.h"
#include "topo/library.h"
#include "util/table.h"

namespace {

using namespace sunmap;

void print_table() {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  select::TopologySelector selector(bench::video_config());
  const auto report = selector.select(app, library);

  bench::print_heading(
      "Fig 6: VOPD mapping characteristics over the topology library "
      "(paper: butterfly best on hops/area/power; 8 switches of 4x4)");
  util::Table table({"topology", "avg hops", "switches", "links",
                     "core links", "switch area", "area (mm2)", "power (mW)",
                     "feasible"});
  for (const auto& candidate : report.candidates) {
    const auto& eval = candidate.result.eval;
    const auto* topology = candidate.topology;
    table.add_row({topology->name(), util::Table::num(eval.avg_switch_hops),
                   std::to_string(topology->num_switches()),
                   std::to_string(topology->num_network_links()),
                   std::to_string(topology->num_core_links()),
                   util::Table::num(eval.switch_area_mm2),
                   util::Table::num(eval.design_area_mm2),
                   util::Table::num(eval.design_power_mw, 1),
                   eval.feasible() ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());
  if (report.best() != nullptr) {
    std::printf("selected: %s (paper selects the 4-ary 2-fly butterfly)\n",
                report.best()->topology->name().c_str());
  }
}

void BM_SelectVopdTopology(benchmark::State& state) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  select::TopologySelector selector(bench::video_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(app, library));
  }
}
BENCHMARK(BM_SelectVopdTopology)->Unit(benchmark::kMillisecond);

void BM_MapVopdPerTopology(benchmark::State& state) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto& topology =
      *library[static_cast<std::size_t>(state.range(0))];
  mapping::Mapper mapper(bench::video_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(app, topology));
  }
  state.SetLabel(topology.name());
}
BENCHMARK(BM_MapVopdPerTopology)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return sunmap::bench::run_benchmarks(argc, argv);
}
