// Experiment TAB-RT — backs two of the paper's performance claims:
//  * §6.4: "NoC selection and generation was obtained in few minutes on a
//    1 GHz SUN workstation" — full-library selection runtime vs core count.
//  * §4.1: "As the minimum-path computations are performed on the quadrant
//    graph instead of the entire NoC graph, large computational time
//    savings is achieved" — Dijkstra restricted to the quadrant vs the full
//    switch graph.
//
// It also hosts the cross-PR perf probe for the incremental
// mapping-evaluation engine: a one-shot wall-clock measurement of
// Mapper::map with greedy swaps on the 64-core synthetic mesh. Run with
// `--json[=path]` to dump the probe as JSON (default BENCH_mapping.json) so
// the perf trajectory is tracked across PRs.

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "graph/paths.h"
#include "select/selector.h"
#include "topo/library.h"
#include "util/table.h"

#include <chrono>
#include <cstring>
#include <string>

namespace {

using namespace sunmap;

apps::SyntheticSpec spec_for(int cores) {
  apps::SyntheticSpec spec;
  spec.num_cores = cores;
  spec.edge_density = 0.12;
  spec.max_bandwidth_mbps = 400.0;
  spec.seed = 42;
  return spec;
}

/// One-shot probe of the mapping search on the 64-core synthetic mesh — the
/// reference workload for the evaluation-engine speedup. A single run (not a
/// google-benchmark loop) because one search already evaluates thousands of
/// candidate mappings, and because the probe's mapping/cost are part of the
/// contract: they must stay identical as the engine gets faster.
void run_mapping_probe(const std::string& json_path) {
  constexpr int kCores = 64;
  const auto app = apps::synthetic(spec_for(kCores));
  const auto mesh = topo::make_mesh_for(kCores);
  auto config = sunmap::bench::video_config();
  // Feasible from the initial greedy mapping onwards (the peak link load of
  // the 64-core workload is ~3.4 GB/s), so the bound-based pruning of the
  // two-phase evaluation is exercised, as in production-sized searches.
  config.link_bandwidth_mbps = 4000.0;
  mapping::Mapper mapper(config);

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = mapper.map(app, *mesh);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  bench::print_heading(
      "Mapping-search probe: Mapper::map, greedy swaps, 64-core synthetic "
      "mesh (the cross-PR perf trajectory)");
  util::Table table({"wall ms", "evaluated", "pruned", "cost", "feasible"});
  table.add_row({util::Table::num(wall_ms, 1),
                 std::to_string(result.evaluated_mappings),
                 std::to_string(result.pruned_mappings),
                 util::Table::num(result.eval.cost, 4),
                 result.eval.feasible() ? "yes" : "no"});
  std::printf("%s", table.to_string().c_str());

  if (json_path.empty()) return;
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"mapping_scaling_64core_mesh\",\n"
               "  \"workload\": {\"cores\": %d, \"topology\": \"%s\", "
               "\"routing\": \"%s\", \"objective\": \"%s\", "
               "\"link_bandwidth_mbps\": %.1f, \"swap_passes\": %d},\n"
               "  \"wall_ms\": %.3f,\n"
               "  \"evaluated_mappings\": %d,\n"
               "  \"pruned_mappings\": %d,\n"
               "  \"cost\": %.17g,\n"
               "  \"feasible\": %s\n"
               "}\n",
               kCores, mesh->name().c_str(), route::to_string(config.routing),
               mapping::to_string(config.objective),
               config.link_bandwidth_mbps, config.swap_passes, wall_ms,
               result.evaluated_mappings, result.pruned_mappings,
               result.eval.cost, result.eval.feasible() ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
}

void print_quadrant_sizes() {
  bench::print_heading(
      "Quadrant graph size vs full NoC graph (the source of the paper's "
      "'large computational time savings')");
  util::Table table({"mesh", "switches", "avg quadrant nodes",
                     "largest quadrant"});
  for (int cores : {16, 36, 64}) {
    const auto mesh = topo::make_mesh_for(cores);
    double total = 0.0;
    int count = 0;
    int largest = 0;
    for (int a = 0; a < mesh->num_slots(); ++a) {
      for (int b = 0; b < mesh->num_slots(); ++b) {
        if (a == b) continue;
        const int size = static_cast<int>(mesh->quadrant_nodes(a, b).size());
        total += size;
        largest = std::max(largest, size);
        ++count;
      }
    }
    table.add_row({mesh->name(), std::to_string(mesh->num_switches()),
                   util::Table::num(total / count, 1),
                   std::to_string(largest)});
  }
  std::printf("%s", table.to_string().c_str());
}

void BM_SelectionScaling(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const auto app = apps::synthetic(spec_for(cores));
  const auto library = topo::standard_library(cores);
  auto config = sunmap::bench::video_config();
  config.link_bandwidth_mbps = 2000.0;  // keep feasibility out of the timing
  select::TopologySelector selector(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(app, library));
  }
  state.SetLabel(std::to_string(cores) + " cores, full library");
}
BENCHMARK(BM_SelectionScaling)
    ->Arg(9)
    ->Arg(16)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond);

void BM_DijkstraQuadrantVsFull(benchmark::State& state) {
  const bool use_quadrant = state.range(0) != 0;
  const auto mesh = topo::make_mesh_for(64);
  const auto& g = mesh->switch_graph();
  // A mid-distance pair: quadrant is a fraction of the 8x8 mesh.
  const int src = 9, dst = 36;
  std::vector<char> admitted(static_cast<std::size_t>(g.num_nodes()), 0);
  for (graph::NodeId u : mesh->quadrant_nodes(src, dst)) {
    admitted[static_cast<std::size_t>(u)] = 1;
  }
  const auto cost = [](graph::EdgeId) { return 1.0; };
  for (auto _ : state) {
    if (use_quadrant) {
      benchmark::DoNotOptimize(graph::shortest_path(
          g, mesh->ingress_switch(src), mesh->egress_switch(dst), cost,
          [&](graph::NodeId u) {
            return admitted[static_cast<std::size_t>(u)] != 0;
          }));
    } else {
      benchmark::DoNotOptimize(graph::shortest_path(
          g, mesh->ingress_switch(src), mesh->egress_switch(dst), cost));
    }
  }
  state.SetLabel(use_quadrant ? "quadrant graph" : "full NoC graph");
}
BENCHMARK(BM_DijkstraQuadrantVsFull)->Arg(0)->Arg(1);

void BM_SwapSearchCost(benchmark::State& state) {
  const int passes = static_cast<int>(state.range(0));
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  auto config = sunmap::bench::video_config();
  config.swap_passes = passes;
  mapping::Mapper mapper(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(app, *mesh));
  }
  state.SetLabel(std::to_string(passes) + " swap passes");
}
BENCHMARK(BM_SwapSearchCost)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --json[=path] flag before google-benchmark sees the
  // arguments.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_mapping.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  argc = kept;

  print_quadrant_sizes();
  run_mapping_probe(json_path);
  return sunmap::bench::run_benchmarks(argc, argv);
}
