// Cross-PR routing perf probe: transactional incremental routing
// (route::RoutingSession) vs the from-scratch canonical routing loop.
//
// Two probes, both SA-shaped (speculative solve then commit|rollback, the
// accept/reject traffic a simulated-annealing chain generates):
//  * session probe — the routing machinery isolated: one persistent
//    RoutingSession against an inline from-scratch rip-up-and-re-route loop,
//    per-candidate two-slot swaps on vopd/mpeg4/synth48 under minimum-path
//    and split-all routing. Every speculative solve is checked bit-for-bit
//    (loads and every route) against a fresh full solve.
//  * evaluation probe — the same walk through the full DeltaTxn evaluation
//    stack with config.incremental_routing on vs off (informational: the
//    evaluation also pays floorplanning and metrics, which are identical on
//    both sides). Timing rounds run on freshly built contexts so the metric
//    caches cannot turn the timed walk into a cache-hit replay.
//
// Each app runs on two meshes:
//  * its minimal mesh (every/nearly every slot occupied) — the regime where
//    load-dependent kinds cascade: a swap shifts link loads, the loads break
//    hop-count ties, and most min-paths flip, so provable reuse is capped
//    near the canonical prefix. These legs gate bit-identity and report
//    speedup informationally (the session is designed to cost little more
//    than the plain loop here, not to win).
//  * an exploration mesh (>= 4x the cores, the shape SUNMAP's topology
//    selection sweeps mid-search) — most uniform slot swaps move only empty
//    slots, the session's zero-dirty snapshot returns in O(edges), and the
//    speedup is structural. The >=2x acceptance bar is gated on the
//    exploration legs whose from-scratch routing work is macroscopic; the
//    microsecond-scale minimum-path legs on 49-slot meshes are dominated by
//    fixed per-solve costs on both sides and are reported informationally.
//
// `--json[=path]` dumps BENCH_routing.json. Gated invariants:
// routing_bit_identical (every leg, both kinds, both probes) and
// routing_incremental_2x (time-weighted aggregate session speedup over the
// gated exploration legs >= 2x for minimum-path AND for split-all).

#include "apps/apps.h"
#include "bench/bench_util.h"
#include "mapping/core_graph.h"
#include "mapping/delta_txn.h"
#include "mapping/eval_context.h"
#include "mapping/mapper.h"
#include "route/routing.h"
#include "route/routing_session.h"
#include "topo/library.h"
#include "util/prng.h"
#include "util/table.h"

#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace sunmap;

constexpr int kTimingRounds = 3;

mapping::CoreGraph make_synth48() {
  apps::SyntheticSpec spec;
  spec.num_cores = 48;
  spec.edge_density = 0.05;
  spec.seed = 42;
  return apps::synthetic(spec);
}

struct Workloads {
  mapping::CoreGraph vopd = apps::vopd();
  mapping::CoreGraph mpeg4 = apps::mpeg4();
  mapping::CoreGraph synth48 = make_synth48();
  std::unique_ptr<topo::Topology> mesh16 = topo::make_mesh_for(16);
  // vopd/mpeg4 exploration (12 cores on 49 slots) and synth48 exploration
  // (48 cores on the 15x15 mesh): the >=4x-slots shapes SUNMAP's topology
  // selection sweeps mid-search.
  std::unique_ptr<topo::Topology> mesh49 = topo::make_mesh_for(48);
  std::unique_ptr<topo::Topology> mesh64 = topo::make_mesh_for(64);
  std::unique_ptr<topo::Topology> mesh225 = topo::make_mesh_for(200);
};

struct Leg {
  std::string key;
  const mapping::CoreGraph* app = nullptr;
  const topo::Topology* topology = nullptr;
  route::RoutingKind kind = route::RoutingKind::kMinPath;
  int steps = 0;
  bool gated_2x = false;  ///< leg participates in the 2x aggregate
};

std::vector<Leg> make_session_legs(const Workloads& w) {
  using K = route::RoutingKind;
  return {
      // Minimal meshes: bit-identity + bounded overhead, informational.
      {"vopd_mesh16_mp", &w.vopd, w.mesh16.get(), K::kMinPath, 200, false},
      {"vopd_mesh16_sa", &w.vopd, w.mesh16.get(), K::kSplitAll, 60, false},
      {"mpeg4_mesh16_mp", &w.mpeg4, w.mesh16.get(), K::kMinPath, 200, false},
      {"mpeg4_mesh16_sa", &w.mpeg4, w.mesh16.get(), K::kSplitAll, 60, false},
      {"synth48_mesh64_mp", &w.synth48, w.mesh64.get(), K::kMinPath, 200,
       false},
      {"synth48_mesh64_sa", &w.synth48, w.mesh64.get(), K::kSplitAll, 60,
       false},
      // Exploration meshes: the gated >=2x regime (microsecond-scale MP legs
      // on the 49-slot meshes stay informational).
      {"vopd_mesh49_mp", &w.vopd, w.mesh49.get(), K::kMinPath, 200, false},
      {"vopd_mesh49_sa", &w.vopd, w.mesh49.get(), K::kSplitAll, 100, true},
      {"mpeg4_mesh49_mp", &w.mpeg4, w.mesh49.get(), K::kMinPath, 200, false},
      {"mpeg4_mesh49_sa", &w.mpeg4, w.mesh49.get(), K::kSplitAll, 100, true},
      {"synth48_mesh225_mp", &w.synth48, w.mesh225.get(), K::kMinPath, 200,
       true},
      {"synth48_mesh225_sa", &w.synth48, w.mesh225.get(), K::kSplitAll, 60,
       true},
  };
}

std::vector<Leg> make_eval_legs(const Workloads& w) {
  using K = route::RoutingKind;
  return {
      {"vopd_mesh16_mp", &w.vopd, w.mesh16.get(), K::kMinPath, 120, false},
      {"vopd_mesh16_sa", &w.vopd, w.mesh16.get(), K::kSplitAll, 40, false},
      {"vopd_mesh49_sa", &w.vopd, w.mesh49.get(), K::kSplitAll, 60, false},
      {"synth48_mesh64_mp", &w.synth48, w.mesh64.get(), K::kMinPath, 120,
       false},
      {"synth48_mesh225_mp", &w.synth48, w.mesh225.get(), K::kMinPath, 120,
       false},
  };
}

struct ProbeRow {
  std::string key;
  double from_scratch_ms = 0.0;
  double incremental_ms = 0.0;
  bool bit_identical = false;
  bool gated_2x = false;
  double reuse_rate = 0.0;     ///< reused / (reused + rerouted)
  double snapshot_rate = 0.0;  ///< zero-dirty O(1) solves / solves

  [[nodiscard]] double speedup() const {
    return incremental_ms > 0.0 ? from_scratch_ms / incremental_ms : 0.0;
  }
};

/// One (slot a, slot b) swap per step, identical across passes because the
/// Prng is reseeded identically.
struct SwapSequence {
  explicit SwapSequence(int num_slots, std::uint64_t seed = 1234)
      : prng(seed), slots(num_slots) {}
  util::Prng prng;
  int slots;

  std::pair<int, int> next() {
    const int a = prng.next_int(0, slots - 1);
    int b = prng.next_int(0, slots - 2);
    if (b >= a) ++b;
    return {a, b};
  }
};

// ---- Session probe: the routing machinery isolated. ----------------------

/// The from-scratch competitor: the canonical routing trace (decreasing-
/// value pass then rip-up rounds) inlined, no session, no reuse.
void reference_route_all(const route::RoutingEngine& engine,
                         const std::vector<mapping::Commodity>& commodities,
                         const std::vector<route::CommodityEndpoints>& ends,
                         route::LoadMap& loads,
                         std::vector<route::RouteSet>& routes,
                         int reroute_passes) {
  loads.clear();
  const std::size_t n = commodities.size();
  routes.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    engine.route(ends[k].src, ends[k].dst, commodities[k].value_mbps, loads,
                 routes[k]);
    loads.add_route(routes[k], commodities[k].value_mbps);
  }
  for (int pass = 0; pass < reroute_passes; ++pass) {
    for (std::size_t k = 0; k < n; ++k) {
      loads.remove_route(routes[k], commodities[k].value_mbps);
      engine.route(ends[k].src, ends[k].dst, commodities[k].value_mbps, loads,
                   routes[k]);
      loads.add_route(routes[k], commodities[k].value_mbps);
    }
  }
}

ProbeRow run_session_probe(const Leg& leg) {
  const topo::Topology& topology = *leg.topology;
  route::RoutingEngine::Options options;
  route::QuadrantTable quadrants(topology);
  if (leg.kind == route::RoutingKind::kMinPath) {
    options.quadrant_table = &quadrants;
  }
  const route::RoutingEngine engine(topology, leg.kind, options);
  const auto commodities = mapping::commodities_by_value(*leg.app);
  std::vector<double> demands;
  for (const auto& c : commodities) demands.push_back(c.value_mbps);
  const int reroute_passes = mapping::MapperConfig{}.reroute_passes;
  const int num_edges = topology.switch_graph().num_edges();
  const int num_slots = topology.num_slots();

  const auto endpoints_of = [&](const std::vector<int>& core_to_slot) {
    std::vector<route::CommodityEndpoints> ends;
    ends.reserve(commodities.size());
    for (const auto& c : commodities) {
      ends.push_back(route::CommodityEndpoints{
          core_to_slot[static_cast<std::size_t>(c.src_core)],
          core_to_slot[static_cast<std::size_t>(c.dst_core)]});
    }
    return ends;
  };
  const auto initial_mapping = [&] {
    std::vector<int> core_to_slot(
        static_cast<std::size_t>(leg.app->num_cores()));
    for (int c = 0; c < leg.app->num_cores(); ++c) {
      core_to_slot[static_cast<std::size_t>(c)] = c;
    }
    return core_to_slot;
  };
  const auto swap_slots = [&](std::vector<int>& core_to_slot,
                              std::vector<int>& slot_to_core, int a, int b) {
    mapping::apply_slot_swap(a, b, core_to_slot, slot_to_core);
  };
  const auto inverse_of = [&](const std::vector<int>& core_to_slot) {
    std::vector<int> slot_to_core(static_cast<std::size_t>(num_slots), -1);
    for (std::size_t c = 0; c < core_to_slot.size(); ++c) {
      slot_to_core[static_cast<std::size_t>(core_to_slot[c])] =
          static_cast<int>(c);
    }
    return slot_to_core;
  };

  ProbeRow row;
  row.key = leg.key;
  row.gated_2x = leg.gated_2x;

  // Correctness pass (untimed): every speculative solve must match a fresh
  // full solve of the same assignment — loads and every route, bitwise.
  {
    auto core_to_slot = initial_mapping();
    auto slot_to_core = inverse_of(core_to_slot);
    route::RoutingSession session;
    session.reset(demands, reroute_passes);
    route::LoadMap loads(num_edges);
    session.solve(engine, endpoints_of(core_to_slot), loads,
                  /*speculative=*/false);
    SwapSequence sequence(num_slots);
    util::Prng accept_prng(99);
    row.bit_identical = true;
    for (int step = 0; step < leg.steps && row.bit_identical; ++step) {
      const auto [a, b] = sequence.next();
      swap_slots(core_to_slot, slot_to_core, a, b);
      const auto ends = endpoints_of(core_to_slot);
      session.solve(engine, ends, loads, /*speculative=*/true);

      route::RoutingSession fresh;
      fresh.reset(demands, reroute_passes);
      route::LoadMap expected(num_edges);
      fresh.solve(engine, ends, expected, /*speculative=*/false);
      for (int e = 0; e < num_edges; ++e) {
        if (loads.values()[static_cast<std::size_t>(e)] !=
            expected.values()[static_cast<std::size_t>(e)]) {
          row.bit_identical = false;
        }
      }
      for (int k = 0; k < session.num_commodities(); ++k) {
        if (!route::same_routes(session.route(k), fresh.route(k))) {
          row.bit_identical = false;
        }
      }
      if (accept_prng.chance(0.5)) {
        session.commit();
      } else {
        session.pop();
        swap_slots(core_to_slot, slot_to_core, a, b);
      }
    }
    const auto& stats = session.stats();
    const double total = static_cast<double>(stats.reused + stats.rerouted);
    row.reuse_rate =
        total > 0.0 ? static_cast<double>(stats.reused) / total : 0.0;
    row.snapshot_rate =
        stats.solves > 0 ? static_cast<double>(stats.snapshot_solves) /
                               static_cast<double>(stats.solves)
                         : 0.0;
  }

  // Timing passes, best of kTimingRounds per side.
  row.from_scratch_ms = std::numeric_limits<double>::infinity();
  row.incremental_ms = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kTimingRounds; ++round) {
    // From-scratch: the inline canonical loop per candidate.
    {
      auto core_to_slot = initial_mapping();
      auto slot_to_core = inverse_of(core_to_slot);
      route::LoadMap loads(num_edges);
      std::vector<route::RouteSet> routes;
      SwapSequence sequence(num_slots);
      util::Prng accept_prng(99);
      double blackhole = 0.0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int step = 0; step < leg.steps; ++step) {
        const auto [a, b] = sequence.next();
        swap_slots(core_to_slot, slot_to_core, a, b);
        reference_route_all(engine, commodities, endpoints_of(core_to_slot),
                            loads, routes, reroute_passes);
        blackhole += loads.max_load();
        if (!accept_prng.chance(0.5)) {
          swap_slots(core_to_slot, slot_to_core, a, b);
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(blackhole);
      row.from_scratch_ms = std::min(
          row.from_scratch_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    // Incremental: one session, speculative solve + commit|pop.
    {
      auto core_to_slot = initial_mapping();
      auto slot_to_core = inverse_of(core_to_slot);
      route::RoutingSession session;
      session.reset(demands, reroute_passes);
      route::LoadMap loads(num_edges);
      session.solve(engine, endpoints_of(core_to_slot), loads,
                    /*speculative=*/false);
      SwapSequence sequence(num_slots);
      util::Prng accept_prng(99);
      double blackhole = 0.0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int step = 0; step < leg.steps; ++step) {
        const auto [a, b] = sequence.next();
        swap_slots(core_to_slot, slot_to_core, a, b);
        session.solve(engine, endpoints_of(core_to_slot), loads,
                      /*speculative=*/true);
        blackhole += loads.max_load();
        if (accept_prng.chance(0.5)) {
          session.commit();
        } else {
          session.pop();
          swap_slots(core_to_slot, slot_to_core, a, b);
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(blackhole);
      row.incremental_ms = std::min(
          row.incremental_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  return row;
}

// ---- Evaluation probe: the full DeltaTxn stack, routing session on/off. --

ProbeRow run_eval_probe(const Leg& leg) {
  const topo::Topology& topology = *leg.topology;
  mapping::MapperConfig config;
  config.routing = leg.kind;
  const mapping::Mapper mapper(config);
  auto reference_config = config;
  reference_config.incremental_routing = false;

  const int num_slots = topology.num_slots();
  const auto initial_mapping = [&] {
    std::vector<int> core_to_slot(
        static_cast<std::size_t>(leg.app->num_cores()));
    for (int c = 0; c < leg.app->num_cores(); ++c) {
      core_to_slot[static_cast<std::size_t>(c)] = c;
    }
    return core_to_slot;
  };
  const auto inverse_of = [&](const std::vector<int>& core_to_slot) {
    std::vector<int> slot_to_core(static_cast<std::size_t>(num_slots), -1);
    for (std::size_t c = 0; c < core_to_slot.size(); ++c) {
      slot_to_core[static_cast<std::size_t>(core_to_slot[c])] =
          static_cast<int>(c);
    }
    return slot_to_core;
  };

  // One walk over one context; returns the cost stream's sum so the two
  // sides can be compared (and the work cannot be optimized away).
  const auto drive = [&](const mapping::EvalContext& context,
                         const mapping::EvalContext* reference,
                         ProbeRow* check_row) {
    auto mapping = initial_mapping();
    auto inverse = inverse_of(mapping);
    mapping::EvalScratch scratch;
    mapping::DeltaTxn txn(context, scratch, mapping, inverse);
    SwapSequence sequence(num_slots);
    util::Prng accept_prng(99);
    double cost_sum = 0.0;
    for (int step = 0; step < leg.steps; ++step) {
      const auto [a, b] = sequence.next();
      txn.begin_swap(a, b);
      const auto eval = txn.evaluate(/*materialize=*/false);
      cost_sum += eval.cost;
      if (reference != nullptr && check_row->bit_identical) {
        mapping::EvalScratch fresh;
        const auto expected =
            reference->evaluate(mapping, fresh, /*materialize=*/false);
        if (eval.cost != expected.cost ||
            eval.max_link_load_mbps != expected.max_link_load_mbps ||
            eval.design_power_mw != expected.design_power_mw ||
            eval.avg_switch_hops != expected.avg_switch_hops) {
          check_row->bit_identical = false;
        }
      }
      if (accept_prng.chance(0.5)) {
        txn.commit();
      } else {
        txn.rollback();
      }
    }
    return cost_sum;
  };

  ProbeRow row;
  row.key = leg.key;
  row.bit_identical = true;
  {
    const mapping::EvalContext ctx(*leg.app, topology, config,
                                   mapper.library());
    const mapping::EvalContext reference(*leg.app, topology, reference_config,
                                        mapper.library());
    (void)drive(ctx, &reference, &row);
  }

  // Timing rounds on freshly built contexts: a context reused across rounds
  // would answer the identical candidate stream from its metric cache and
  // time nothing but hash lookups.
  row.from_scratch_ms = std::numeric_limits<double>::infinity();
  row.incremental_ms = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kTimingRounds; ++round) {
    {
      const mapping::EvalContext fresh_reference(
          *leg.app, topology, reference_config, mapper.library());
      const auto t0 = std::chrono::steady_clock::now();
      const double blackhole = drive(fresh_reference, nullptr, nullptr);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(blackhole);
      row.from_scratch_ms = std::min(
          row.from_scratch_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    {
      const mapping::EvalContext fresh_incremental(*leg.app, topology, config,
                                                   mapper.library());
      const auto t0 = std::chrono::steady_clock::now();
      const double blackhole = drive(fresh_incremental, nullptr, nullptr);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(blackhole);
      row.incremental_ms = std::min(
          row.incremental_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  return row;
}

// ---- Micro-benchmarks. ---------------------------------------------------

void BM_RoutingSessionSpeculativeSwap(benchmark::State& state) {
  const auto mesh = topo::make_mesh_for(16);
  const route::RoutingEngine engine(*mesh, route::RoutingKind::kMinPath);
  const auto app = apps::vopd();
  const auto commodities = mapping::commodities_by_value(app);
  std::vector<double> demands;
  for (const auto& c : commodities) demands.push_back(c.value_mbps);
  std::vector<int> core_to_slot(static_cast<std::size_t>(app.num_cores()));
  for (int c = 0; c < app.num_cores(); ++c) {
    core_to_slot[static_cast<std::size_t>(c)] = c;
  }
  std::vector<int> slot_to_core(static_cast<std::size_t>(mesh->num_slots()),
                                -1);
  for (std::size_t c = 0; c < core_to_slot.size(); ++c) {
    slot_to_core[static_cast<std::size_t>(core_to_slot[c])] =
        static_cast<int>(c);
  }
  route::RoutingSession session;
  session.reset(demands, 2);
  route::LoadMap loads(mesh->switch_graph().num_edges());
  std::vector<route::CommodityEndpoints> ends(commodities.size());
  const auto refresh_ends = [&] {
    for (std::size_t k = 0; k < commodities.size(); ++k) {
      ends[k] = route::CommodityEndpoints{
          core_to_slot[static_cast<std::size_t>(commodities[k].src_core)],
          core_to_slot[static_cast<std::size_t>(commodities[k].dst_core)]};
    }
  };
  refresh_ends();
  session.solve(engine, ends, loads, /*speculative=*/false);
  SwapSequence sequence(mesh->num_slots());
  for (auto _ : state) {
    const auto [a, b] = sequence.next();
    mapping::apply_slot_swap(a, b, core_to_slot, slot_to_core);
    refresh_ends();
    session.solve(engine, ends, loads, /*speculative=*/true);
    benchmark::DoNotOptimize(loads.max_load());
    session.pop();
    mapping::apply_slot_swap(a, b, core_to_slot, slot_to_core);
  }
}
BENCHMARK(BM_RoutingSessionSpeculativeSwap)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --json[=path] flag before google-benchmark sees the
  // arguments.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_routing.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  argc = kept;

  const auto total_start = std::chrono::steady_clock::now();
  const Workloads workloads;

  bench::print_heading(
      "Routing session probe: speculative solve + commit|pop vs from-scratch "
      "canonical loop (bit-identical by contract)");
  std::vector<ProbeRow> session_rows;
  util::Table table({"leg", "from-scratch ms", "session ms", "speedup",
                     "reuse", "snap", "gated", "bit-identical"});
  bool all_identical = true;
  double mp_scratch = 0.0, mp_incremental = 0.0;
  double sa_scratch = 0.0, sa_incremental = 0.0;
  for (const auto& leg : make_session_legs(workloads)) {
    auto row = run_session_probe(leg);
    all_identical = all_identical && row.bit_identical;
    if (leg.gated_2x) {
      if (leg.kind == route::RoutingKind::kMinPath) {
        mp_scratch += row.from_scratch_ms;
        mp_incremental += row.incremental_ms;
      } else {
        sa_scratch += row.from_scratch_ms;
        sa_incremental += row.incremental_ms;
      }
    }
    table.add_row({row.key, util::Table::num(row.from_scratch_ms, 1),
                   util::Table::num(row.incremental_ms, 1),
                   util::Table::num(row.speedup(), 2) + "x",
                   util::Table::num(100.0 * row.reuse_rate, 0) + "%",
                   util::Table::num(100.0 * row.snapshot_rate, 0) + "%",
                   row.gated_2x ? "2x" : "-",
                   row.bit_identical ? "yes" : "NO"});
    session_rows.push_back(std::move(row));
  }
  const double mp_speedup =
      mp_incremental > 0.0 ? mp_scratch / mp_incremental : 0.0;
  const double sa_speedup =
      sa_incremental > 0.0 ? sa_scratch / sa_incremental : 0.0;
  std::printf("%sgated exploration aggregate: %.2fx minimum-path, %.2fx "
              "split-all (bar: 2x each)\n",
              table.to_string().c_str(), mp_speedup, sa_speedup);

  bench::print_heading(
      "Evaluation probe: DeltaTxn walk with incremental routing on vs off "
      "(informational timing; identity gated)");
  std::vector<ProbeRow> eval_rows;
  util::Table eval_table({"leg", "reference ms", "incremental ms", "speedup",
                          "bit-identical"});
  for (const auto& leg : make_eval_legs(workloads)) {
    auto row = run_eval_probe(leg);
    all_identical = all_identical && row.bit_identical;
    eval_table.add_row({row.key, util::Table::num(row.from_scratch_ms, 1),
                        util::Table::num(row.incremental_ms, 1),
                        util::Table::num(row.speedup(), 2) + "x",
                        row.bit_identical ? "yes" : "NO"});
    eval_rows.push_back(std::move(row));
  }
  std::printf("%s", eval_table.to_string().c_str());

  const bool routing_2x = mp_speedup >= 2.0 && sa_speedup >= 2.0;
  int status = 0;
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: incremental routing diverged from the from-scratch "
                 "reference\n");
    status = 1;
  }
  if (!routing_2x) {
    std::fprintf(stderr,
                 "FAIL: gated session speedup %.2fx minimum-path / %.2fx "
                 "split-all below the 2x acceptance bar\n",
                 mp_speedup, sa_speedup);
    status = 1;
  }

  const auto total_end = std::chrono::steady_clock::now();
  const double total_ms =
      std::chrono::duration<double, std::milli>(total_end - total_start)
          .count();

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"routing_incremental\",\n"
                 "  \"wall_ms\": %.3f,\n"
                 "  \"routing_bit_identical\": %s,\n"
                 "  \"routing_incremental_2x\": %s,\n"
                 "  \"session_speedup_minpath\": %.3f,\n"
                 "  \"session_speedup_splitall\": %.3f,\n",
                 total_ms, all_identical ? "true" : "false",
                 routing_2x ? "true" : "false", mp_speedup, sa_speedup);
    const auto emit_rows = [&](const char* name,
                               const std::vector<ProbeRow>& rows,
                               const char* tail) {
      std::fprintf(out, "  \"%s\": [\n", name);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& row = rows[i];
        std::fprintf(out,
                     "    {\"run\": \"%s\", \"from_scratch_ms\": %.3f, "
                     "\"incremental_ms\": %.3f, \"speedup\": %.3f, "
                     "\"gated_2x\": %s, \"bit_identical\": %s}%s\n",
                     row.key.c_str(), row.from_scratch_ms,
                     row.incremental_ms, row.speedup(),
                     row.gated_2x ? "true" : "false",
                     row.bit_identical ? "true" : "false",
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(out, "  ]%s\n", tail);
    };
    emit_rows("session_probe", session_rows, ",");
    emit_rows("eval_probe", eval_rows, ",");
    // Only the incremental legs are tracked sub-benchmarks: the from-scratch
    // legs are the deliberately slow reference path.
    std::fprintf(out, "  \"sub_benchmarks\": {\n");
    const std::size_t total_subs = session_rows.size() + eval_rows.size();
    std::size_t emitted = 0;
    for (const auto& row : session_rows) {
      std::fprintf(out, "    \"%s_session\": %.3f%s\n", row.key.c_str(),
                   row.incremental_ms, ++emitted < total_subs ? "," : "");
    }
    for (const auto& row : eval_rows) {
      std::fprintf(out, "    \"%s_eval\": %.3f%s\n", row.key.c_str(),
                   row.incremental_ms, ++emitted < total_subs ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (status != 0) return status;
  return sunmap::bench::run_benchmarks(argc, argv);
}
