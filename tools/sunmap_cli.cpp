// Command-line front end to the SUNMAP flow: read a core graph (from a file
// in the src/io text format or one of the built-in benchmarks), run
// topology selection under the requested routing function / objective /
// constraints, print the comparison table, and optionally generate the
// SystemC-style network sources.
//
// Usage:
//   sunmap_cli --app vopd
//   sunmap_cli --file my_app.cg --routing SA --objective power \
//              --bandwidth 500 --extensions --out generated/

#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

#include "apps/apps.h"
#include "core/sunmap.h"
#include "fplan/render.h"
#include "io/core_graph_io.h"
#include "io/csv.h"

namespace {

using namespace sunmap;

void usage() {
  std::cout <<
      R"(sunmap_cli — automatic NoC topology selection and generation

  --app <name>        built-in benchmark: vopd | mpeg4 | dsp | netproc16 |
                      pip | mwd
  --file <path>       core graph file (see src/io/core_graph_io.h grammar)
  --routing <fn>      DO | MP | SM | SA           (default MP)
  --objective <obj>   delay | area | power        (default delay)
  --bandwidth <MBps>  link capacity               (default 500)
  --threads <n>       swap-search worker threads  (default 1; any n is
                      deterministic and matches the sequential result)
  --max-area <mm2>    area constraint             (default unlimited)
  --extensions        include octagon/star topologies
  --floorplan         print the winning floorplan as ASCII
  --csv <path>        write the comparison table as CSV
  --out <dir>         write generated SystemC sources here
  --help              this text
)";
}

std::optional<route::RoutingKind> parse_routing(const std::string& text) {
  for (route::RoutingKind kind : route::kAllRoutingKinds) {
    if (text == route::to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<mapping::Objective> parse_objective(const std::string& text) {
  if (text == "delay") return mapping::Objective::kMinDelay;
  if (text == "area") return mapping::Objective::kMinArea;
  if (text == "power") return mapping::Objective::kMinPower;
  return std::nullopt;
}

std::optional<mapping::CoreGraph> builtin_app(const std::string& name) {
  if (name == "vopd") return apps::vopd();
  if (name == "mpeg4") return apps::mpeg4();
  if (name == "dsp") return apps::dsp_filter();
  if (name == "netproc16") return apps::netproc16();
  if (name == "pip") return apps::pip();
  if (name == "mwd") return apps::mwd();
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<mapping::CoreGraph> app;
  core::SunmapConfig config;
  bool show_floorplan = false;
  std::string csv_path;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--app") {
        app = builtin_app(need_value(i));
        if (!app) {
          std::cerr << "unknown built-in app\n";
          return 2;
        }
      } else if (arg == "--file") {
        app = io::read_core_graph_file(need_value(i));
      } else if (arg == "--routing") {
        const auto kind = parse_routing(need_value(i));
        if (!kind) {
          std::cerr << "unknown routing function\n";
          return 2;
        }
        config.mapper.routing = *kind;
      } else if (arg == "--objective") {
        const auto objective = parse_objective(need_value(i));
        if (!objective) {
          std::cerr << "unknown objective\n";
          return 2;
        }
        config.mapper.objective = *objective;
      } else if (arg == "--bandwidth") {
        config.mapper.link_bandwidth_mbps = std::stod(need_value(i));
      } else if (arg == "--threads") {
        config.mapper.num_threads = std::stoi(need_value(i));
      } else if (arg == "--max-area") {
        config.mapper.max_area_mm2 = std::stod(need_value(i));
      } else if (arg == "--extensions") {
        config.include_extension_topologies = true;
      } else if (arg == "--floorplan") {
        show_floorplan = true;
      } else if (arg == "--csv") {
        csv_path = need_value(i);
      } else if (arg == "--out") {
        config.output_directory = need_value(i);
        std::filesystem::create_directories(config.output_directory);
      } else {
        std::cerr << "unknown argument " << arg << " (try --help)\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  if (!app) {
    usage();
    return 2;
  }

  std::cout << "SUNMAP: " << app->name() << " (" << app->num_cores()
            << " cores, " << app->total_bandwidth_mbps()
            << " MB/s) routing=" << route::to_string(config.mapper.routing)
            << " objective=" << mapping::to_string(config.mapper.objective)
            << " link=" << config.mapper.link_bandwidth_mbps << " MB/s\n\n";

  // Invalid configurations (zero bandwidth, zero threads, ...) surface as
  // std::invalid_argument from the tool chain; report them as a clean CLI
  // error instead of an abort.
  std::optional<core::SunmapResult> run_result;
  try {
    const core::Sunmap tool(config);
    run_result = tool.run(*app);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const auto& result = *run_result;
  std::cout << core::Sunmap::report_table(result.report) << "\n";

  if (!csv_path.empty()) {
    io::write_file(csv_path, io::selection_report_csv(result.report));
    std::cout << "wrote " << csv_path << "\n";
  }

  const auto* best = result.best();
  if (best == nullptr) {
    std::cout << "No feasible mapping for any topology in the library.\n";
    return 1;
  }
  std::cout << "Selected: " << best->topology->name() << "\n\n"
            << result.netlist->summary();

  if (show_floorplan) {
    const auto& slot_to_core = best->result.slot_to_core;
    std::cout << "\n"
              << fplan::render_ascii(
                     best->result.eval.floorplan,
                     [&](const fplan::PlacedBlock& block) {
                       if (block.kind == fplan::PlacedBlock::Kind::kSwitch) {
                         return "S" + std::to_string(block.index);
                       }
                       const int core = slot_to_core[
                           static_cast<std::size_t>(block.index)];
                       return core >= 0 ? app->core(core).name
                                        : std::string("-");
                     });
  }
  for (const auto& file : result.written_files) {
    std::cout << "wrote " << file << "\n";
  }
  return 0;
}
