// Command-line front end to the SUNMAP flow: read a core graph (from a file
// in the src/io text format or one of the built-in benchmarks), run
// topology selection under the requested routing function / objective /
// constraints, print the comparison table, and optionally generate the
// SystemC-style network sources.
//
// With --sweep the tool runs a batched design-space exploration instead:
// the --routing/--objective/--bandwidth/--max-area flags then accept
// comma-separated lists, the cross product of which is swept through
// select::DesignSpaceExplorer with one reusable evaluation context per
// topology.
//
// Usage:
//   sunmap_cli --app vopd
//   sunmap_cli --file my_app.cg --routing SA --objective power \
//              --bandwidth 500 --extensions --out generated/
//   sunmap_cli --app vopd --sweep --objective delay,area,power \
//              --routing DO,MP,SM,SA --csv sweep.csv --json sweep.json

#include <algorithm>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "core/sunmap.h"
#include "fault/fault.h"
#include "fplan/render.h"
#include "io/core_graph_io.h"
#include "io/csv.h"
#include "io/exploration_io.h"
#include "mapping/sim_eval.h"
#include "select/explorer.h"
#include "sim/simulator.h"
#include "sweep/coordinator.h"
#include "sweep/daemon.h"
#include "util/table.h"

namespace {

using namespace sunmap;

void usage() {
  std::cout <<
      R"(sunmap_cli — automatic NoC topology selection and generation

  --app <name>        built-in benchmark: vopd | mpeg4 | dsp | netproc16 |
                      pip | mwd
  --file <path>       core graph file (see src/io/core_graph_io.h grammar)
  --routing <fn>      DO | MP | SM | SA           (default MP)
  --objective <obj>   delay | area | power | weighted   (default delay)
  --search <kind>     greedy | sa | rsa: greedy pairwise swaps, single-seed
                      simulated annealing, or the multi-restart annealer
                      (default greedy)
  --restarts <n>      independent annealing chains of --search rsa; the
                      total annealing budget is split across them and the
                      best-of-restarts mapping kept (default 4)
  --reheat <n>        temperature re-heats per annealing chain (default 0)
  --swap-passes <n>   hill-climbing passes of the greedy swap search
                      (default 2; 1 reproduces the paper)
  --fplan-engine <e>  floorplan position engine: lp (constraint-graph
                      longest path, default) | simplex (the literal
                      simplex LP of the paper)
  --fplan-sizing-passes <n>
                      soft-block aspect-ratio sizing passes (default 2;
                      0 keeps every soft block square)
  --w-delay <x>       weight of the delay term    (objective weighted)
  --w-area <x>        weight of the area term     (objective weighted)
  --w-power <x>       weight of the power term    (objective weighted)
  --faults <spec>     fault scenarios folded into the objective:
                      none | n1 (exhaustive single-channel failures) |
                      rand[M] (random scenarios of M channels each,
                      default 1) | an explicit list "a-b,c-d,s7/..."
                      (link faults by endpoint switches, sN = dead
                      switch N, / separates scenarios)  (default none)
  --fault-samples <n> random scenarios drawn by --faults rand (default 4)
  --fault-seed <s>    seed of the --faults rand sampler (default 1)
  --fault-mode <m>    worst (max over fault-free + degraded costs,
                      default) | weighted (weight-normalised mean)
  --fault-penalty <x> fault-free-cost multiplier charged when a scenario
                      disconnects a commodity; must be >= 1 (default 10)
  --bandwidth <MBps>  link capacity               (default 500)
  --sim-engine <e>    flit-level simulator core: event (event-driven,
                      default) | cycle (the cycle-stepped reference; both
                      engines produce bit-identical statistics)
  --sim-finalists <n> high-fidelity finalist tier: after selection the
                      flit-level simulator re-scores the n best feasible
                      candidates (per objective group in sweeps) under the
                      application's own trace, reporting contention-aware
                      delay next to the analytical number (default 0 = off)
  --sim-validate      simulate EVERY feasible candidate and print the
                      analytical-vs-simulated model-validation table (the
                      finalist tier with no cap)
  --sim-rank          two-phase simulated-delay ranking: the analytical
                      search prefilters each objective group to its
                      --sim-finalists best cells (defaults to 3 when
                      unset), the simulator re-ranks those, and the
                      sim-winner table prints next to the analytical
                      winners (sweep reports gain a sim_best CSV column
                      and a sim_winners JSON array). Purely additive:
                      analytical results are bit-identical with it off
  --sim-seed <s>      simulator PRNG seed, decoupled from --seed (the
                      search seed); must be >= 1 (default 1, today's
                      behavior)
  --sim-traffic <t>   finalist-tier traffic model: trace (the mapped
                      commodity rates, default) | bursty (per-flow on/off
                      modulation of the same rates; equal long-run load)
  --sim-burst-len <c> mean burst length in cycles of --sim-traffic bursty
                      (default 50)
  --sim-burst-duty <d> duty cycle in (0,1) of --sim-traffic bursty
                      (default 0.3)
  --threads <n>       swap-search worker threads  (default 1; any n is
                      deterministic and matches the sequential result)
  --max-area <mm2>    area constraint             (default unlimited)
  --extensions        include octagon/star topologies
  --floorplan         print the winning floorplan as ASCII
  --csv <path>        write the comparison table as CSV
  --out <dir>         write generated SystemC sources here
  --sweep             batched design-space exploration: --routing,
                      --objective, --bandwidth, --max-area, --search,
                      --restarts, --swap-passes, --fplan-engine,
                      --fplan-sizing-passes, and --faults accept
                      comma-separated lists (--faults sweeps named specs
                      only — none/n1/rand[M]; explicit scenario lists
                      contain commas and need single-point mode)
                      and the whole cross product is explored with one
                      evaluation context per topology;
                      prints the comparison matrix, per-objective winners,
                      and the area/power Pareto frontier. --floorplan then
                      renders each objective winner's floorplan and --out
                      writes each winner's generated sources to
                      <dir>/<objective>/. In sweep mode --threads means
                      explorer workers spread across topologies (each swap
                      search stays sequential); any thread count returns
                      the identical report
  --json <path>       write the exploration report as JSON (sweep only)

Distributed sweeps (with --sweep; see README "Distributed sweeps"):
  --workers <n>       distribute the sweep across n worker processes; the
                      merged report is bit-identical to the single-process
                      explorer at any worker/shard count
  --shards <n>        shards the grid is split into (default: one per
                      worker; more shards = finer crash-recovery granules)
  --checkpoint <path> append-only journal of completed points; a killed
                      sweep resumes from it with --resume
  --resume            fold the checkpoint's completed points in and only
                      evaluate the remainder (fingerprint-checked)
  --progress          periodic progress lines on stderr (done/total, ETA,
                      points/s, per-worker throughput)

Daemon mode:
  --serve <socket>    serve sweep requests over a unix socket, keeping
                      per-topology evaluation contexts alive across
                      requests; SIGINT (or --serve-requests) stops it
  --serve-requests <n>  exit after serving n requests (default: unlimited)
  --serve-threads <n>   accept-loop worker threads; concurrent requests
                      over different (app, extensions) pairs evaluate in
                      parallel, requests sharing a context pool queue on
                      it (default 1)
  --call <socket>     submit THIS command line's --app/--objective/... as a
                      request to a running daemon and print the JSON reply
  --help              this text
)";
}

void handle_sigint(int) { sweep::request_stop(); }

std::optional<route::RoutingKind> parse_routing(const std::string& text) {
  for (route::RoutingKind kind : route::kAllRoutingKinds) {
    if (text == route::to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<mapping::Objective> parse_objective(const std::string& text) {
  if (text == "delay") return mapping::Objective::kMinDelay;
  if (text == "area") return mapping::Objective::kMinArea;
  if (text == "power") return mapping::Objective::kMinPower;
  if (text == "weighted") return mapping::Objective::kWeighted;
  return std::nullopt;
}

std::optional<fplan::Floorplanner::Engine> parse_fplan_engine(
    const std::string& text) {
  if (text == "lp" || text == "longest-path") {
    return fplan::Floorplanner::Engine::kLongestPath;
  }
  if (text == "simplex" || text == "simplex-lp") {
    return fplan::Floorplanner::Engine::kSimplexLp;
  }
  return std::nullopt;
}

std::optional<mapping::SearchKind> parse_search(const std::string& text) {
  if (text == "greedy" || text == "greedy-swaps") {
    return mapping::SearchKind::kGreedySwaps;
  }
  if (text == "sa" || text == "annealing") {
    return mapping::SearchKind::kAnnealing;
  }
  if (text == "rsa" || text == "restart" || text == "restart-annealing") {
    return mapping::SearchKind::kRestartAnnealing;
  }
  return std::nullopt;
}

/// Parses one --faults spec. `base` supplies the sampler parameters the
/// --fault-samples/--fault-seed flags may already have set, so flag order
/// does not matter. Grammar: "none" | "n1" | "rand[M]" | explicit scenario
/// list "a-b,c-d,s7/..." ('/' separates scenarios, ',' separates faults,
/// "a-b" fails the channel between switches a and b, "sN" kills switch N).
std::optional<fault::FaultSpec> parse_fault_spec(const std::string& text,
                                                 const fault::FaultSpec& base) {
  fault::FaultSpec spec = base;
  spec.scenarios.clear();
  if (text == "none") {
    spec.kind = fault::FaultSpec::Kind::kNone;
    return spec;
  }
  if (text == "n1") {
    spec.kind = fault::FaultSpec::Kind::kEveryLink;
    return spec;
  }
  if (text.rfind("rand", 0) == 0) {
    spec.kind = fault::FaultSpec::Kind::kRandom;
    try {
      if (text.size() > 4) spec.faults_per_scenario = std::stoi(text.substr(4));
    } catch (const std::exception&) {
      return std::nullopt;
    }
    return spec;
  }
  spec.kind = fault::FaultSpec::Kind::kExplicit;
  try {
    std::stringstream scenarios(text);
    std::string scenario_text;
    while (std::getline(scenarios, scenario_text, '/')) {
      fault::ScenarioSpec scenario;
      std::stringstream faults(scenario_text);
      std::string item;
      while (std::getline(faults, item, ',')) {
        if (item.empty()) return std::nullopt;
        if (item.front() == 's') {
          scenario.switches.push_back(std::stoi(item.substr(1)));
          continue;
        }
        const auto dash = item.find('-', 1);
        if (dash == std::string::npos) return std::nullopt;
        scenario.links.push_back({std::stoi(item.substr(0, dash)),
                                  std::stoi(item.substr(dash + 1))});
      }
      if (scenario.links.empty() && scenario.switches.empty()) {
        return std::nullopt;
      }
      spec.scenarios.push_back(std::move(scenario));
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (spec.scenarios.empty()) return std::nullopt;
  return spec;
}

std::optional<fault::Aggregation> parse_fault_mode(const std::string& text) {
  if (text == "worst" || text == "worst-case") {
    return fault::Aggregation::kWorstCase;
  }
  if (text == "weighted") return fault::Aggregation::kWeighted;
  return std::nullopt;
}

std::optional<mapping::CoreGraph> builtin_app(const std::string& name) {
  if (name == "vopd") return apps::vopd();
  if (name == "mpeg4") return apps::mpeg4();
  if (name == "dsp") return apps::dsp_filter();
  if (name == "netproc16") return apps::netproc16();
  if (name == "pip") return apps::pip();
  if (name == "mwd") return apps::mwd();
  return std::nullopt;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

/// The value lists and output options a sweep run consumes.
struct SweepArgs {
  std::vector<std::string> objectives, routings, bandwidths, max_areas,
      searches, restarts, swap_passes, fplan_engines, fplan_sizing;
  /// Raw --faults value; split on ',' here (named specs only in sweeps).
  std::string faults;
  int threads = 1;
  bool show_floorplan = false;
  /// --sim-validate: simulate every feasible cell (finalist tier, no cap).
  bool sim_validate = false;
  std::string out_dir;
  std::string csv_path;
  std::string json_path;
  /// Distributed-sweep options (--workers/--shards/--checkpoint/--resume/
  /// --progress). workers == 0 and an empty checkpoint keep the sweep
  /// in-process, exactly as before.
  int workers = 0;
  int shards = 0;
  std::string checkpoint_path;
  bool resume = false;
  bool progress = false;
  /// The invoking command line, for the "resume with: ..." hint printed
  /// after an interrupted checkpointed sweep.
  std::string command_line;
};

int run_sweep(const mapping::CoreGraph& app, const core::SunmapConfig& config,
              const SweepArgs& args) {
  const auto& objectives = args.objectives;
  const auto& routings = args.routings;
  const auto& searches = args.searches;
  select::ExplorationRequest request;
  request.app = &app;
  request.base = config.mapper;
  request.num_threads = args.threads;
  request.sim_finalists = args.sim_validate
                              ? std::numeric_limits<int>::max()
                              : config.mapper.sim_finalists;
  request.sim_rank = config.mapper.sim_rank;
  for (const auto& text : objectives) {
    const auto objective = parse_objective(text);
    if (!objective) {
      std::cerr << "unknown objective " << text << "\n";
      return 2;
    }
    request.objectives.push_back(*objective);
  }
  for (const auto& text : routings) {
    const auto kind = parse_routing(text);
    if (!kind) {
      std::cerr << "unknown routing function " << text << "\n";
      return 2;
    }
    request.routings.push_back(*kind);
  }
  for (const auto& text : searches) {
    const auto kind = parse_search(text);
    if (!kind) {
      std::cerr << "unknown search strategy " << text << "\n";
      return 2;
    }
    request.searches.push_back(*kind);
  }
  try {
    for (const auto& text : args.bandwidths) {
      request.link_bandwidths_mbps.push_back(std::stod(text));
    }
    for (const auto& text : args.max_areas) {
      request.max_areas_mm2.push_back(std::stod(text));
    }
    for (const auto& text : args.restarts) {
      request.restart_counts.push_back(std::stoi(text));
    }
    for (const auto& text : args.swap_passes) {
      request.swap_passes.push_back(std::stoi(text));
    }
  } catch (const std::exception&) {
    std::cerr << "bad numeric list value\n";
    return 2;
  }

  // The floorplan axis is the cross product of the engine and sizing-pass
  // lists over the base floorplan options; either list left empty falls
  // back to the base value, and both empty leaves the axis unswept.
  if (!args.fplan_engines.empty() || !args.fplan_sizing.empty()) {
    std::vector<fplan::Floorplanner::Engine> engines;
    for (const auto& text : args.fplan_engines) {
      const auto engine = parse_fplan_engine(text);
      if (!engine) {
        std::cerr << "unknown floorplan engine " << text << "\n";
        return 2;
      }
      engines.push_back(*engine);
    }
    if (engines.empty()) engines.push_back(config.mapper.floorplan.engine);
    std::vector<int> sizing;
    try {
      for (const auto& text : args.fplan_sizing) {
        sizing.push_back(std::stoi(text));
      }
    } catch (const std::exception&) {
      std::cerr << "bad numeric list value\n";
      return 2;
    }
    if (sizing.empty()) sizing.push_back(config.mapper.floorplan.sizing_passes);
    for (const auto engine : engines) {
      for (const int passes : sizing) {
        auto options = config.mapper.floorplan;
        options.engine = engine;
        options.sizing_passes = passes;
        request.floorplan_options.push_back(std::move(options));
      }
    }
  }

  // The fault axis sweeps named specs; the aggregation mode, penalty, and
  // sampler parameters come from the single-valued --fault-* flags and are
  // shared by every entry.
  if (!args.faults.empty()) {
    for (const auto& text : split_list(args.faults)) {
      const auto spec = parse_fault_spec(text, config.mapper.faults.spec);
      if (!spec || spec->kind == fault::FaultSpec::Kind::kExplicit) {
        std::cerr << "bad sweep fault spec " << text
                  << " (sweeps take none | n1 | rand[M])\n";
        return 2;
      }
      auto faults = config.mapper.faults;
      faults.spec = *spec;
      request.fault_sets.push_back(std::move(faults));
    }
  }

  const auto library = topo::standard_library(
      app.num_cores(), config.include_extension_topologies);
  request.library = &library;

  const bool distributed = args.workers > 0 || !args.checkpoint_path.empty();
  if (distributed && (request.sim_finalists > 0 || request.sim_rank)) {
    std::cerr << "--sim-finalists/--sim-validate/--sim-rank need an "
                 "in-process sweep (merged reports carry no routes to "
                 "simulate)\n";
    return 2;
  }
  std::optional<select::ExplorationReport> report;
  try {
    if (distributed) {
      sweep::SweepOptions options;
      options.num_workers = std::max(1, args.workers);
      options.num_shards = args.shards;
      options.checkpoint_path = args.checkpoint_path;
      options.resume = args.resume;
      options.progress = args.progress;
      options.description = app.name();
      sweep::reset_stop();
      std::signal(SIGINT, handle_sigint);
      auto result = sweep::run_sweep(request, options);
      std::signal(SIGINT, SIG_DFL);
      if (result.stats.interrupted) {
        std::cerr << "sweep interrupted: " << result.stats.points_evaluated
                  << " newly completed points";
        if (!args.checkpoint_path.empty()) {
          std::cerr << " flushed to " << args.checkpoint_path
                    << "\nresume with: " << args.command_line;
          if (!args.resume) std::cerr << " --resume";
        }
        std::cerr << "\n";
        return 130;
      }
      report = std::move(result.report);
    } else {
      select::DesignSpaceExplorer explorer;
      report = explorer.explore(request);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "Sweep: " << report->results.size() << " design points x "
            << library.size() << " topologies\n\n";
  util::Table matrix({"point", "routing", "objective", "search", "BW (MB/s)",
                      "feasible", "best topology", "cost", "area (mm2)",
                      "power (mW)"});
  for (std::size_t p = 0; p < report->results.size(); ++p) {
    const auto& result = report->results[p];
    const auto& cfg = result.point.config;
    int feasible = 0;
    for (const auto& candidate : result.selection.candidates) {
      if (candidate.feasible()) ++feasible;
    }
    const auto* best = result.selection.best();
    matrix.add_row(
        {std::to_string(p), route::to_string(cfg.routing),
         mapping::to_string(cfg.objective),
         cfg.search == mapping::SearchKind::kRestartAnnealing
             ? std::string(mapping::to_string(cfg.search)) + "-x" +
                   std::to_string(cfg.annealing_restarts)
             : mapping::to_string(cfg.search),
         util::Table::num(cfg.link_bandwidth_mbps, 0),
         std::to_string(feasible) + "/" +
             std::to_string(result.selection.candidates.size()),
         best != nullptr ? best->topology->name() : "-",
         best != nullptr ? util::Table::num(best->result.eval.cost) : "-",
         best != nullptr
             ? util::Table::num(best->result.eval.design_area_mm2)
             : "-",
         best != nullptr
             ? util::Table::num(best->result.eval.design_power_mw, 1)
             : "-"});
  }
  std::cout << matrix.to_string() << "\n";

  std::cout << "Per-objective winners:\n";
  util::Table winners({"objective", "design point", "topology", "cost"});
  for (const auto& best : report->winners) {
    if (best.found()) {
      const auto& result =
          report->results[static_cast<std::size_t>(best.point_index)];
      const auto& candidate =
          result.selection
              .candidates[static_cast<std::size_t>(best.topology_index)];
      winners.add_row({mapping::to_string(best.objective),
                       result.point.label(), candidate.topology->name(),
                       util::Table::num(candidate.result.eval.cost)});
    } else {
      winners.add_row(
          {mapping::to_string(best.objective), "-", "infeasible", "-"});
    }
  }
  std::cout << winners.to_string() << "\n";

  // The simulated-delay re-rank (--sim-rank): the cell the simulator
  // crowns per objective group, next to the analytical winner table above.
  if (request.sim_rank) {
    std::cout << "Simulated-delay winners (re-ranked top "
              << request.sim_finalists << " per objective):\n";
    util::Table sim_winners(
        {"objective", "design point", "topology", "simulated (cyc)", "cost"});
    for (const auto& best : report->sim_winners) {
      if (best.found()) {
        const auto& result =
            report->results[static_cast<std::size_t>(best.point_index)];
        const auto& candidate =
            result.selection
                .candidates[static_cast<std::size_t>(best.topology_index)];
        sim_winners.add_row(
            {mapping::to_string(best.objective), result.point.label(),
             candidate.topology->name(),
             candidate.sim.has_value()
                 ? util::Table::num(candidate.sim->simulated_latency_cycles)
                 : "-",
             util::Table::num(candidate.result.eval.cost)});
      } else {
        sim_winners.add_row(
            {mapping::to_string(best.objective), "-", "infeasible", "-", "-"});
      }
    }
    std::cout << sim_winners.to_string() << "\n";
  }

  // The finalist tier's verdicts: one row per simulated (point, topology)
  // cell, the contention-aware delay next to the zero-load prediction.
  if (request.sim_finalists > 0) {
    std::cout << "Simulated finalists ("
              << sim::to_string(request.base.sim_use_event_engine
                                    ? sim::SimEngine::kEventDriven
                                    : sim::SimEngine::kCycleStepped)
              << " engine):\n";
    util::Table sims({"point", "topology", "analytical (cyc)",
                      "simulated (cyc)", "model err", "status"});
    for (std::size_t p = 0; p < report->results.size(); ++p) {
      for (const auto& candidate : report->results[p].selection.candidates) {
        if (!candidate.sim.has_value()) continue;
        sims.add_row(
            {std::to_string(p), candidate.topology->name(),
             util::Table::num(candidate.sim->analytical_latency_cycles),
             util::Table::num(candidate.sim->simulated_latency_cycles),
             util::Table::num(candidate.sim->model_error() * 100.0, 1) + "%",
             sim::to_string(candidate.sim->stats.status)});
      }
    }
    std::cout << sims.to_string() << "\n";
  }

  if (!report->pareto.empty()) {
    std::cout << "Area/power Pareto frontier over all feasible mappings:\n";
    util::Table pareto({"area (mm2)", "power (mW)"});
    for (const auto& point : report->pareto) {
      pareto.add_row({util::Table::num(point.area_mm2),
                      util::Table::num(point.power_mw, 1)});
    }
    std::cout << pareto.to_string() << "\n";
  }

  // Sweep-mode --floorplan / --out operate on the per-objective winners:
  // each winner's floorplan is rendered, and its generated sources go to
  // <out>/<objective>[-wN]/ so several winners never overwrite each other.
  // A distributed sweep merges scalars only (floorplan geometry stays in
  // the worker processes), so those two outputs need a single-process run.
  if (distributed && (args.show_floorplan || !args.out_dir.empty())) {
    std::cout << "note: --floorplan/--out need floorplan geometry, which a "
                 "distributed sweep does not merge; rerun the winning "
                 "point without --workers to render or generate it.\n";
  }
  for (const auto& best : report->winners) {
    if (distributed) break;  // No geometry to render in merged reports.
    if (!best.found()) continue;
    const auto& result =
        report->results[static_cast<std::size_t>(best.point_index)];
    const auto& candidate =
        result.selection
            .candidates[static_cast<std::size_t>(best.topology_index)];
    std::string tag = mapping::to_string(best.objective);
    if (best.weights_index >= 0) {
      tag += "-w" + std::to_string(best.weights_index);
    }
    if (args.show_floorplan) {
      const auto& slot_to_core = candidate.result.slot_to_core;
      std::cout << "Floorplan of the " << tag << " winner ("
                << candidate.topology->name() << ", "
                << result.point.label() << "):\n"
                << fplan::render_ascii(
                       candidate.result.eval.floorplan,
                       [&](const fplan::PlacedBlock& block) {
                         if (block.kind == fplan::PlacedBlock::Kind::kSwitch) {
                           return "S" + std::to_string(block.index);
                         }
                         const int core = slot_to_core[
                             static_cast<std::size_t>(block.index)];
                         return core >= 0 ? app.core(core).name
                                          : std::string("-");
                       })
                << "\n";
    }
    if (!args.out_dir.empty()) {
      const auto netlist = gen::Netlist::build(
          *candidate.topology, app, candidate.result.core_to_slot,
          &candidate.result.eval.floorplan);
      const auto dir =
          (std::filesystem::path(args.out_dir) / tag).string();
      std::filesystem::create_directories(dir);
      gen::SystemCWriter writer;
      for (const auto& file : writer.write_to(netlist, dir)) {
        std::cout << "wrote " << file << "\n";
      }
    }
  }

  if (!args.csv_path.empty()) {
    io::write_file(args.csv_path, io::exploration_report_csv(*report));
    std::cout << "wrote " << args.csv_path << "\n";
  }
  if (!args.json_path.empty()) {
    io::write_file(args.json_path, io::exploration_report_json(*report));
    std::cout << "wrote " << args.json_path << "\n";
  }

  for (const auto& best : report->winners) {
    if (best.found()) return 0;
  }
  std::cout << "No feasible mapping for any design point.\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<mapping::CoreGraph> app;
  std::string app_name;
  core::SunmapConfig config;
  bool show_floorplan = false;
  bool sweep = false;
  bool sim_validate = false;
  int threads = 1;
  int workers = 0;
  int shards = 0;
  bool resume = false;
  bool progress = false;
  int serve_requests = -1;
  int serve_threads = 1;
  std::string checkpoint_path;
  std::string serve_socket;
  std::string call_socket;
  std::string csv_path;
  std::string json_path;
  std::string faults_text;
  std::vector<std::string> objectives, routings, bandwidths, max_areas,
      searches, restarts, swap_passes, fplan_engines, fplan_sizing;

  std::string command_line;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) command_line += ' ';
    command_line += argv[i];
  }

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--app") {
        app_name = need_value(i);
        app = builtin_app(app_name);
        if (!app) {
          std::cerr << "unknown built-in app\n";
          return 2;
        }
      } else if (arg == "--file") {
        app = io::read_core_graph_file(need_value(i));
      } else if (arg == "--routing") {
        routings = split_list(need_value(i));
      } else if (arg == "--objective") {
        objectives = split_list(need_value(i));
      } else if (arg == "--search") {
        searches = split_list(need_value(i));
      } else if (arg == "--restarts") {
        restarts = split_list(need_value(i));
      } else if (arg == "--reheat") {
        config.mapper.annealing_reheats = std::stoi(need_value(i));
      } else if (arg == "--swap-passes") {
        swap_passes = split_list(need_value(i));
      } else if (arg == "--fplan-engine") {
        fplan_engines = split_list(need_value(i));
      } else if (arg == "--fplan-sizing-passes") {
        fplan_sizing = split_list(need_value(i));
      } else if (arg == "--faults") {
        // Kept raw: explicit fault specs use ',' inside one scenario, so
        // splitting into sweep values happens only in sweep mode.
        faults_text = need_value(i);
      } else if (arg == "--fault-samples") {
        config.mapper.faults.spec.num_scenarios = std::stoi(need_value(i));
      } else if (arg == "--fault-seed") {
        config.mapper.faults.spec.seed = std::stoull(need_value(i));
      } else if (arg == "--fault-mode") {
        const std::string text = need_value(i);
        const auto mode = parse_fault_mode(text);
        if (!mode) {
          std::cerr << "unknown fault mode " << text << "\n";
          return 2;
        }
        config.mapper.faults.aggregation = *mode;
      } else if (arg == "--fault-penalty") {
        config.mapper.faults.infeasible_penalty = std::stod(need_value(i));
      } else if (arg == "--bandwidth") {
        bandwidths = split_list(need_value(i));
      } else if (arg == "--sim-engine") {
        const std::string text = need_value(i);
        if (text == "event") {
          config.mapper.sim_use_event_engine = true;
        } else if (text == "cycle") {
          config.mapper.sim_use_event_engine = false;
        } else {
          std::cerr << "unknown sim engine " << text << " (event | cycle)\n";
          return 2;
        }
      } else if (arg == "--sim-finalists") {
        config.mapper.sim_finalists = std::stoi(need_value(i));
      } else if (arg == "--sim-validate") {
        sim_validate = true;
      } else if (arg == "--sim-rank") {
        config.mapper.sim_rank = true;
      } else if (arg == "--sim-seed") {
        config.mapper.sim_seed = std::stoull(need_value(i));
      } else if (arg == "--sim-traffic") {
        const std::string text = need_value(i);
        if (text == "trace") {
          config.mapper.sim_traffic = mapping::SimTraffic::kTrace;
        } else if (text == "bursty") {
          config.mapper.sim_traffic = mapping::SimTraffic::kBursty;
        } else {
          std::cerr << "unknown sim traffic " << text
                    << " (trace | bursty)\n";
          return 2;
        }
      } else if (arg == "--sim-burst-len") {
        config.mapper.sim_burst_len = std::stod(need_value(i));
      } else if (arg == "--sim-burst-duty") {
        config.mapper.sim_burst_duty = std::stod(need_value(i));
      } else if (arg == "--w-delay") {
        config.mapper.weights.delay = std::stod(need_value(i));
      } else if (arg == "--w-area") {
        config.mapper.weights.area = std::stod(need_value(i));
      } else if (arg == "--w-power") {
        config.mapper.weights.power = std::stod(need_value(i));
      } else if (arg == "--threads") {
        threads = std::stoi(need_value(i));
      } else if (arg == "--max-area") {
        max_areas = split_list(need_value(i));
      } else if (arg == "--sweep") {
        sweep = true;
      } else if (arg == "--workers") {
        workers = std::stoi(need_value(i));
      } else if (arg == "--shards") {
        shards = std::stoi(need_value(i));
      } else if (arg == "--checkpoint") {
        checkpoint_path = need_value(i);
      } else if (arg == "--resume") {
        resume = true;
      } else if (arg == "--progress") {
        progress = true;
      } else if (arg == "--serve") {
        serve_socket = need_value(i);
      } else if (arg == "--serve-requests") {
        serve_requests = std::stoi(need_value(i));
      } else if (arg == "--serve-threads") {
        serve_threads = std::stoi(need_value(i));
      } else if (arg == "--call") {
        call_socket = need_value(i);
      } else if (arg == "--extensions") {
        config.include_extension_topologies = true;
      } else if (arg == "--floorplan") {
        show_floorplan = true;
      } else if (arg == "--csv") {
        csv_path = need_value(i);
      } else if (arg == "--json") {
        json_path = need_value(i);
      } else if (arg == "--out") {
        config.output_directory = need_value(i);
        std::filesystem::create_directories(config.output_directory);
      } else {
        std::cerr << "unknown argument " << arg << " (try --help)\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  // Daemon mode: no local evaluation at all — serve sweep requests over
  // the socket until SIGINT (or the request budget) stops the loop.
  if (!serve_socket.empty()) {
    sweep::reset_stop();
    std::signal(SIGINT, handle_sigint);
    try {
      sweep::DaemonOptions options;
      options.socket_path = serve_socket;
      options.max_requests = serve_requests;
      options.accept_threads = serve_threads;
      options.verbose = true;
      const auto stats = sweep::serve(options);
      std::cout << "served " << stats.requests_served << " request(s), "
                << stats.requests_failed << " failed\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  if (!app) {
    usage();
    return 2;
  }

  // Client mode: translate this command line into a daemon request and
  // print the JSON report the daemon returns.
  if (!call_socket.empty()) {
    if (app_name.empty()) {
      std::cerr << "--call needs --app (daemon requests name built-in "
                   "apps)\n";
      return 2;
    }
    std::string request_text = "app=" + app_name + "\n";
    auto add_list = [&](const char* key,
                        const std::vector<std::string>& values) {
      if (values.empty()) return;
      request_text += std::string(key) + "=";
      for (std::size_t v = 0; v < values.size(); ++v) {
        if (v > 0) request_text += ',';
        request_text += values[v];
      }
      request_text += '\n';
    };
    add_list("objectives", objectives);
    add_list("routings", routings);
    add_list("bandwidths", bandwidths);
    add_list("areas", max_areas);
    add_list("searches", searches);
    add_list("restarts", restarts);
    add_list("swap_passes", swap_passes);
    if (config.include_extension_topologies) request_text += "extensions=1\n";
    if (threads != 1) {
      request_text += "threads=" + std::to_string(threads) + "\n";
    }
    try {
      const auto json = sweep::call_daemon(call_socket, request_text);
      if (!json_path.empty()) {
        io::write_file(json_path, json);
        std::cout << "wrote " << json_path << "\n";
      } else {
        std::cout << json;
      }
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  if (!sweep && (workers > 0 || shards > 0 || !checkpoint_path.empty() ||
                 resume || progress)) {
    std::cerr << "--workers/--shards/--checkpoint/--resume/--progress "
                 "require --sweep\n";
    return 2;
  }

  if (!sweep) {
    // Single-point mode: every axis flag must name exactly one value.
    if (objectives.size() > 1 || routings.size() > 1 ||
        bandwidths.size() > 1 || max_areas.size() > 1 ||
        searches.size() > 1 || restarts.size() > 1 ||
        swap_passes.size() > 1 || fplan_engines.size() > 1 ||
        fplan_sizing.size() > 1) {
      std::cerr << "value lists require --sweep\n";
      return 2;
    }
    if (!json_path.empty()) {
      std::cerr << "--json requires --sweep\n";
      return 2;
    }
    if (!objectives.empty()) {
      const auto objective = parse_objective(objectives.front());
      if (!objective) {
        std::cerr << "unknown objective " << objectives.front() << "\n";
        return 2;
      }
      config.mapper.objective = *objective;
    }
    if (!routings.empty()) {
      const auto kind = parse_routing(routings.front());
      if (!kind) {
        std::cerr << "unknown routing function " << routings.front() << "\n";
        return 2;
      }
      config.mapper.routing = *kind;
    }
    if (!searches.empty()) {
      const auto kind = parse_search(searches.front());
      if (!kind) {
        std::cerr << "unknown search strategy " << searches.front() << "\n";
        return 2;
      }
      config.mapper.search = *kind;
    }
    if (!fplan_engines.empty()) {
      const auto engine = parse_fplan_engine(fplan_engines.front());
      if (!engine) {
        std::cerr << "unknown floorplan engine " << fplan_engines.front()
                  << "\n";
        return 2;
      }
      config.mapper.floorplan.engine = *engine;
    }
    try {
      if (!bandwidths.empty()) {
        config.mapper.link_bandwidth_mbps = std::stod(bandwidths.front());
      }
      if (!max_areas.empty()) {
        config.mapper.max_area_mm2 = std::stod(max_areas.front());
      }
      if (!restarts.empty()) {
        config.mapper.annealing_restarts = std::stoi(restarts.front());
      }
      if (!swap_passes.empty()) {
        config.mapper.swap_passes = std::stoi(swap_passes.front());
      }
      if (!fplan_sizing.empty()) {
        config.mapper.floorplan.sizing_passes = std::stoi(fplan_sizing.front());
      }
    } catch (const std::exception&) {
      std::cerr << "bad numeric value\n";
      return 2;
    }
    if (!faults_text.empty()) {
      const auto spec =
          parse_fault_spec(faults_text, config.mapper.faults.spec);
      if (!spec) {
        std::cerr << "bad fault spec " << faults_text << " (try --help)\n";
        return 2;
      }
      config.mapper.faults.spec = *spec;
    }
    config.mapper.num_threads = threads;
  }

  // --sim-rank needs an analytical prefilter; when --sim-finalists was not
  // given (or left 0), default to re-ranking the 3 best cells per group.
  if (config.mapper.sim_rank && config.mapper.sim_finalists == 0) {
    config.mapper.sim_finalists = 3;
  }

  // Centralised configuration validation (MapperConfig::validate) replaces
  // per-flag checks: a bad combination surfaces as one clean CLI error.
  try {
    config.mapper.validate();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (sweep) {
    SweepArgs args;
    args.objectives = std::move(objectives);
    args.routings = std::move(routings);
    args.bandwidths = std::move(bandwidths);
    args.max_areas = std::move(max_areas);
    args.searches = std::move(searches);
    args.restarts = std::move(restarts);
    args.swap_passes = std::move(swap_passes);
    args.fplan_engines = std::move(fplan_engines);
    args.fplan_sizing = std::move(fplan_sizing);
    args.faults = std::move(faults_text);
    args.threads = threads;
    args.show_floorplan = show_floorplan;
    args.sim_validate = sim_validate;
    args.out_dir = config.output_directory;
    args.csv_path = csv_path;
    args.json_path = json_path;
    args.workers = workers;
    args.shards = shards;
    args.checkpoint_path = checkpoint_path;
    args.resume = resume;
    args.progress = progress;
    args.command_line = command_line;
    return run_sweep(*app, config, args);
  }

  std::cout << "SUNMAP: " << app->name() << " (" << app->num_cores()
            << " cores, " << app->total_bandwidth_mbps()
            << " MB/s) routing=" << route::to_string(config.mapper.routing)
            << " objective=" << mapping::to_string(config.mapper.objective)
            << " link=" << config.mapper.link_bandwidth_mbps << " MB/s";
  if (!config.mapper.faults.empty()) {
    std::cout << " faults=" << fault::describe(config.mapper.faults) << " ("
              << fault::to_string(config.mapper.faults.aggregation) << ")";
  }
  std::cout << "\n\n";

  // Invalid configurations that slip past validate() (e.g. an application
  // with more cores than any topology has slots) surface as
  // std::invalid_argument from the tool chain; report them as a clean CLI
  // error instead of an abort.
  std::optional<core::SunmapResult> run_result;
  try {
    const core::Sunmap tool(config);
    run_result = tool.run(*app);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const auto& result = *run_result;
  std::cout << core::Sunmap::report_table(result.report) << "\n";

  // Single-point finalist tier / model validation: simulate the n best
  // feasible candidates (--sim-validate lifts the cap) and print the
  // contention-aware delay next to the analytical zero-load number.
  if (sim_validate || config.mapper.sim_finalists > 0) {
    std::vector<const select::TopologyCandidate*> finalists;
    for (const auto& candidate : result.report.candidates) {
      if (candidate.feasible()) finalists.push_back(&candidate);
    }
    std::stable_sort(finalists.begin(), finalists.end(),
                     [](const select::TopologyCandidate* a,
                        const select::TopologyCandidate* b) {
                       return a->result.eval.cost < b->result.eval.cost;
                     });
    if (!sim_validate && finalists.size() > static_cast<std::size_t>(
                                                config.mapper.sim_finalists)) {
      finalists.resize(static_cast<std::size_t>(config.mapper.sim_finalists));
    }
    try {
      mapping::SimEvaluator evaluator(
          mapping::sim_tier_options(config.mapper));
      util::Table sims({"topology", "analytical (cyc)", "simulated (cyc)",
                        "model err", "status"});
      // --sim-rank: the finalist the simulator crowns, by (drained first,
      // simulated latency, analytical cost) — same ordering as sweep mode.
      const select::TopologyCandidate* sim_best = nullptr;
      mapping::SimScore sim_best_score;
      for (const auto* candidate : finalists) {
        const auto score =
            evaluator.score(*app, *candidate->topology, candidate->result);
        sims.add_row(
            {candidate->topology->name(),
             util::Table::num(score.analytical_latency_cycles),
             util::Table::num(score.simulated_latency_cycles),
             util::Table::num(score.model_error() * 100.0, 1) + "%",
             sim::to_string(score.stats.status)});
        const bool drained = score.stats.status == sim::RunStatus::kDrained;
        const bool best_drained =
            sim_best != nullptr &&
            sim_best_score.stats.status == sim::RunStatus::kDrained;
        if (sim_best == nullptr ||
            (drained != best_drained
                 ? drained
                 : score.simulated_latency_cycles <
                       sim_best_score.simulated_latency_cycles)) {
          sim_best = candidate;
          sim_best_score = score;
        }
      }
      std::cout << "Flit-level validation ("
                << sim::to_string(evaluator.options().config.engine)
                << " engine):\n"
                << sims.to_string() << "\n";
      if (config.mapper.sim_rank && sim_best != nullptr) {
        std::cout << "Simulated-delay winner: " << sim_best->topology->name()
                  << " ("
                  << util::Table::num(
                         sim_best_score.simulated_latency_cycles)
                  << " cycles simulated)\n\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  if (!csv_path.empty()) {
    io::write_file(csv_path, io::selection_report_csv(result.report));
    std::cout << "wrote " << csv_path << "\n";
  }

  const auto* best = result.best();
  if (best == nullptr) {
    std::cout << "No feasible mapping for any topology in the library.\n";
    return 1;
  }
  std::cout << "Selected: " << best->topology->name() << "\n\n"
            << result.netlist->summary();

  if (show_floorplan) {
    const auto& slot_to_core = best->result.slot_to_core;
    std::cout << "\n"
              << fplan::render_ascii(
                     best->result.eval.floorplan,
                     [&](const fplan::PlacedBlock& block) {
                       if (block.kind == fplan::PlacedBlock::Kind::kSwitch) {
                         return "S" + std::to_string(block.index);
                       }
                       const int core = slot_to_core[
                           static_cast<std::size_t>(block.index)];
                       return core >= 0 ? app->core(core).name
                                        : std::string("-");
                     });
  }
  for (const auto& file : result.written_files) {
    std::cout << "wrote " << file << "\n";
  }
  return 0;
}
